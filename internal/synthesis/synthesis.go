// Package synthesis implements Genie's randomized data-synthesis algorithm
// (Section 3.1, "Synthesis by Sampling"): a bottom-up sampler over the
// NL-template grammar that considers only a subset of derivations per
// construct template. The target size is configurable and the number of
// derivations decreases exponentially with increasing depth — many low-depth
// programs provide breadth, fewer high-depth programs add variance.
//
// The sampler is organized as a sequence of depth waves. Within a wave every
// grammar category is an independent task: it reads only the frozen pools of
// shallower derivations and writes only its own category, so the tasks of a
// wave run concurrently on Config.Workers goroutines (0 = GOMAXPROCS). Each
// task draws from an RNG seeded deterministically from (Config.Seed, depth,
// category) and task results merge back in grammar-registration order, so
// the output is identical — same examples, same order — for every worker
// count, including Workers=1.
//
// Two APIs expose the result: Synthesize materializes the full example
// slice, while SynthesizeStream emits examples on a bounded channel as each
// wave completes, letting downstream stages (paraphrase augmentation,
// parameter replacement) overlap with synthesis instead of waiting for the
// whole set.
//
//genielint:deterministic
package synthesis

import (
	"context"
	"strings"

	"repro/internal/nltemplate"
	"repro/internal/thingtalk"
)

// Config controls a synthesis run.
type Config struct {
	// TargetPerRule is the sample target for each rule at depth 2; it
	// halves with each further depth level (the paper used 100,000 at full
	// scale).
	TargetPerRule int
	// MaxDepth bounds the derivation tree (the paper used 5).
	MaxDepth int
	// Flag restricts synthesis to rules carrying the flag (rules without
	// flags always participate). Empty selects everything.
	Flag string
	// Seed makes the run deterministic: for a fixed seed the output is
	// identical regardless of Workers.
	Seed int64
	// Schemas canonicalizes the produced programs.
	Schemas thingtalk.SchemaSource
	// MaxCommands caps the number of produced examples (0 = no cap).
	MaxCommands int
	// Workers is the number of sampling goroutines per depth wave
	// (0 = GOMAXPROCS, 1 = fully sequential). The sampled examples do not
	// depend on the worker count.
	Workers int
}

// DefaultConfig is a small-scale configuration suitable for tests.
var DefaultConfig = Config{TargetPerRule: 200, MaxDepth: 5}

// Example is one synthesized sentence with its program.
type Example struct {
	// Words is the sentence; parameter slots appear as __slot_N markers
	// until the parameter-replacement stage instantiates them.
	Words []string
	// Program is the canonicalized program (slots included).
	Program *thingtalk.Program
	// Depth is the derivation depth.
	Depth int
	// Rule is the top-level construct template that produced the example.
	Rule string
}

// Sentence returns the words joined by spaces.
func (e *Example) Sentence() string { return strings.Join(e.Words, " ") }

// Synthesize runs the sampling synthesis over the grammar and returns the
// complete commands.
func Synthesize(g *nltemplate.Grammar, cfg Config) []Example {
	s := newSampler(g, cfg)
	var out []Example
	s.run(nil, func(e Example) bool {
		out = append(out, e)
		return true
	})
	return out
}

// SynthesizeStream runs the sampler concurrently and emits complete commands
// on a bounded channel as each depth wave finishes. The channel is closed
// when synthesis completes, the context is cancelled, or MaxCommands is
// reached. For a fixed seed the stream carries exactly the examples
// Synthesize returns, in the same order, for any Workers setting.
func SynthesizeStream(ctx context.Context, g *nltemplate.Grammar, cfg Config) <-chan Example {
	out := make(chan Example, streamBuffer)
	go func() {
		defer close(out)
		s := newSampler(g, cfg)
		s.run(ctx, func(e Example) bool {
			select {
			case out <- e:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return out
}

// SynthesizeCategory runs the sampler and returns the raw derivations of an
// arbitrary category; language extensions (such as the TACL policy language)
// use it to collect values that are not ThingTalk programs.
func SynthesizeCategory(g *nltemplate.Grammar, cfg Config, category string) []*nltemplate.Derivation {
	s := newSampler(g, cfg)
	s.run(nil, nil)
	return s.pools[category]
}

// valueKey renders a derivation value for deduplication.
func valueKey(v any) string {
	switch x := v.(type) {
	case *thingtalk.Program:
		return x.String()
	case *thingtalk.Query:
		return (&thingtalk.Program{Stream: thingtalk.Now(), Query: x, Action: thingtalk.Notify()}).String()
	case *thingtalk.Stream:
		return (&thingtalk.Program{Stream: x, Action: thingtalk.Notify()}).String()
	case *thingtalk.Action:
		return (&thingtalk.Program{Stream: thingtalk.Now(), Action: x}).String()
	case *nltemplate.Pred:
		return x.Selector + "|" + strings.Join(x.Predicate.Tokens(), " ")
	case thingtalk.Value:
		return x.String()
	case interface{ Tokens() []string }:
		return strings.Join(x.Tokens(), " ")
	}
	return ""
}

// Stats summarizes a synthesized set in the paper's §5.2 terms.
type Stats struct {
	Sentences        int
	DistinctPrograms int
	DistinctWords    int
	FunctionPairs    int // unique combinations of functions
	MaxDepth         int
}

// Summarize computes synthesis statistics.
func Summarize(examples []Example) Stats {
	progs := map[string]bool{}
	words := map[string]bool{}
	pairs := map[string]bool{}
	st := Stats{Sentences: len(examples)}
	for i := range examples {
		e := &examples[i]
		progs[signatureKey(e.Program)] = true
		for _, w := range e.Words {
			if !strings.HasPrefix(w, "__slot_") {
				words[w] = true
			}
		}
		pairs[strings.Join(e.Program.Functions(), "+")] = true
		if e.Depth > st.MaxDepth {
			st.MaxDepth = e.Depth
		}
	}
	st.DistinctPrograms = len(progs)
	st.DistinctWords = len(words)
	st.FunctionPairs = len(pairs)
	return st
}

// signatureKey is the program identity modulo slot numbering: slot IDs are
// normalized so that two programs differing only in slot allocation count as
// one distinct program.
func signatureKey(p *thingtalk.Program) string {
	toks := p.Tokens()
	out := make([]string, len(toks))
	n := 0
	for i, t := range toks {
		if strings.HasPrefix(t, "__slot_") {
			n++
			out[i] = "__slot"
			continue
		}
		out[i] = t
	}
	return strings.Join(out, " ")
}
