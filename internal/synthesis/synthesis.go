// Package synthesis implements Genie's randomized data-synthesis algorithm
// (Section 3.1, "Synthesis by Sampling"): a bottom-up sampler over the
// NL-template grammar that considers only a subset of derivations per
// construct template. The target size is configurable and the number of
// derivations decreases exponentially with increasing depth — many low-depth
// programs provide breadth, fewer high-depth programs add variance.
package synthesis

import (
	"math/rand"
	"strings"

	"repro/internal/nltemplate"
	"repro/internal/thingtalk"
)

// Config controls a synthesis run.
type Config struct {
	// TargetPerRule is the sample target for each rule at depth 2; it
	// halves with each further depth level (the paper used 100,000 at full
	// scale).
	TargetPerRule int
	// MaxDepth bounds the derivation tree (the paper used 5).
	MaxDepth int
	// Flag restricts synthesis to rules carrying the flag (rules without
	// flags always participate). Empty selects everything.
	Flag string
	// Seed makes the run deterministic.
	Seed int64
	// Schemas canonicalizes the produced programs.
	Schemas thingtalk.SchemaSource
	// MaxCommands caps the number of produced examples (0 = no cap).
	MaxCommands int
}

// DefaultConfig is a small-scale configuration suitable for tests.
var DefaultConfig = Config{TargetPerRule: 200, MaxDepth: 5}

// Example is one synthesized sentence with its program.
type Example struct {
	// Words is the sentence; parameter slots appear as __slot_N markers
	// until the parameter-replacement stage instantiates them.
	Words []string
	// Program is the canonicalized program (slots included).
	Program *thingtalk.Program
	// Depth is the derivation depth.
	Depth int
	// Rule is the top-level construct template that produced the example.
	Rule string
}

// Sentence returns the words joined by spaces.
func (e *Example) Sentence() string { return strings.Join(e.Words, " ") }

// Synthesize runs the sampling synthesis over the grammar and returns the
// complete commands.
func Synthesize(g *nltemplate.Grammar, cfg Config) []Example {
	s := newSampler(g, cfg)
	s.run()
	return s.commands
}

// SynthesizeCategory runs the sampler and returns the raw derivations of an
// arbitrary category; language extensions (such as the TACL policy language)
// use it to collect values that are not ThingTalk programs.
func SynthesizeCategory(g *nltemplate.Grammar, cfg Config, category string) []*nltemplate.Derivation {
	s := newSampler(g, cfg)
	s.run()
	return s.pools[category]
}

type sampler struct {
	g   *nltemplate.Grammar
	cfg Config
	rng *rand.Rand

	pools map[string][]*nltemplate.Derivation
	seen  map[string]map[string]bool
	// rulesByCat lists the eligible rules per category in deterministic
	// order.
	rulesByCat map[string][]*nltemplate.Rule
	cats       []string

	slotCounter int
	commands    []Example
}

func newSampler(g *nltemplate.Grammar, cfg Config) *sampler {
	if cfg.TargetPerRule <= 0 {
		cfg.TargetPerRule = DefaultConfig.TargetPerRule
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultConfig.MaxDepth
	}
	s := &sampler{
		g:          g,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		pools:      map[string][]*nltemplate.Derivation{},
		seen:       map[string]map[string]bool{},
		rulesByCat: map[string][]*nltemplate.Rule{},
	}
	for _, cat := range g.Categories() {
		var rules []*nltemplate.Rule
		for _, r := range g.Rules(cat) {
			if cfg.Flag == "" || r.HasFlag(cfg.Flag) {
				rules = append(rules, r)
			}
		}
		if len(rules) > 0 {
			s.rulesByCat[cat] = rules
			s.cats = append(s.cats, cat)
		}
	}
	return s
}

func (s *sampler) run() {
	for depth := 1; depth <= s.cfg.MaxDepth; depth++ {
		for _, cat := range s.cats {
			for _, rule := range s.rulesByCat[cat] {
				s.sampleRule(cat, rule, depth)
			}
		}
		if s.cfg.MaxCommands > 0 && len(s.commands) >= s.cfg.MaxCommands {
			break
		}
	}
}

// target returns the per-rule sample budget at a depth: exponentially
// decreasing, as in the paper.
func (s *sampler) target(depth int) int {
	t := s.cfg.TargetPerRule >> uint(depth-2)
	if t < 1 {
		t = 1
	}
	return t
}

// sampleRule draws derivations for one rule whose result lands at the given
// depth (i.e. whose deepest child has depth-1).
func (s *sampler) sampleRule(cat string, rule *nltemplate.Rule, depth int) {
	nts := rule.NonTerminals()
	// Split non-terminals into generators (constants, always depth 1) and
	// pool references.
	poolCats := make([]string, 0, len(nts))
	for _, i := range nts {
		ntCat := rule.RHS[i].NonTerm
		if _, isConst := nltemplate.IsConstCategory(ntCat); !isConst {
			poolCats = append(poolCats, ntCat)
		}
	}
	if len(poolCats) == 0 {
		// Leaf rule: exactly one shape; derives at depth 1 only.
		if depth != 1 {
			return
		}
		s.derive(cat, rule, depth, 1)
		return
	}
	if depth == 1 {
		return // rules with children cannot land at depth 1
	}
	// All referenced pools must be non-empty.
	for _, pc := range poolCats {
		if len(s.pools[pc]) == 0 {
			return
		}
	}
	target := s.target(depth)
	s.derive(cat, rule, depth, target)
}

// derive makes up to target attempts*overdraw draws of children for the
// rule, keeping successful, novel derivations.
func (s *sampler) derive(cat string, rule *nltemplate.Rule, depth, target int) {
	nts := rule.NonTerminals()
	attempts := target * 4
	kept := 0
	for a := 0; a < attempts && kept < target; a++ {
		children := make([]*nltemplate.Derivation, 0, len(nts))
		maxChildDepth := 0
		ok := true
		for _, i := range nts {
			ntCat := rule.RHS[i].NonTerm
			if t, isConst := nltemplate.IsConstCategory(ntCat); isConst {
				children = append(children, s.freshSlot(t))
				continue
			}
			pool := s.pools[ntCat]
			// Only children strictly shallower than the target depth.
			d := s.pickShallower(pool, depth)
			if d == nil {
				ok = false
				break
			}
			children = append(children, d)
			if d.Depth > maxChildDepth {
				maxChildDepth = d.Depth
			}
		}
		if !ok {
			break
		}
		// Novel depth requires the deepest child at depth-1 (otherwise the
		// same derivation was already reachable at a lower depth).
		if len(children) > 0 && containsPoolChild(rule, nts) && maxChildDepth != depth-1 {
			continue
		}
		d := nltemplate.Derive(rule, children)
		if d == nil {
			continue
		}
		if s.keep(cat, rule, d) {
			kept++
		}
	}
}

func containsPoolChild(rule *nltemplate.Rule, nts []int) bool {
	for _, i := range nts {
		if _, isConst := nltemplate.IsConstCategory(rule.RHS[i].NonTerm); !isConst {
			return true
		}
	}
	return false
}

// pickShallower draws a uniform random pool element of depth < depth.
func (s *sampler) pickShallower(pool []*nltemplate.Derivation, depth int) *nltemplate.Derivation {
	// Pools are appended in depth order, so all eligible elements form a
	// prefix; find its length with a linear scan from the end of the
	// eligible region (pools per depth are contiguous).
	hi := len(pool)
	for hi > 0 && pool[hi-1].Depth >= depth {
		hi--
	}
	if hi == 0 {
		return nil
	}
	return pool[s.rng.Intn(hi)]
}

// freshSlot mints a new typed constant slot derivation.
func (s *sampler) freshSlot(t thingtalk.Type) *nltemplate.Derivation {
	s.slotCounter++
	v := thingtalk.SlotValue(t, s.slotCounter)
	return &nltemplate.Derivation{
		Words: v.Tokens(),
		Value: v,
		Depth: 1,
	}
}

// keep deduplicates and stores a derivation; command derivations are also
// canonicalized and collected as output examples.
func (s *sampler) keep(cat string, rule *nltemplate.Rule, d *nltemplate.Derivation) bool {
	key := d.Sentence() + " ||| " + valueKey(d.Value)
	byCat := s.seen[cat]
	if byCat == nil {
		byCat = map[string]bool{}
		s.seen[cat] = byCat
	}
	if byCat[key] {
		return false
	}
	byCat[key] = true
	s.pools[cat] = append(s.pools[cat], d)
	if cat == nltemplate.CatCommand {
		prog, ok := d.Value.(*thingtalk.Program)
		if !ok {
			return false
		}
		if s.cfg.Schemas != nil {
			prog = thingtalk.Canonicalize(prog, s.cfg.Schemas)
		}
		s.commands = append(s.commands, Example{
			Words:   d.Words,
			Program: prog,
			Depth:   d.Depth,
			Rule:    rule.Name,
		})
	}
	return true
}

// valueKey renders a derivation value for deduplication.
func valueKey(v any) string {
	switch x := v.(type) {
	case *thingtalk.Program:
		return x.String()
	case *thingtalk.Query:
		return (&thingtalk.Program{Stream: thingtalk.Now(), Query: x, Action: thingtalk.Notify()}).String()
	case *thingtalk.Stream:
		return (&thingtalk.Program{Stream: x, Action: thingtalk.Notify()}).String()
	case *thingtalk.Action:
		return (&thingtalk.Program{Stream: thingtalk.Now(), Action: x}).String()
	case *nltemplate.Pred:
		return x.Selector + "|" + strings.Join(x.Predicate.Tokens(), " ")
	case thingtalk.Value:
		return x.String()
	case interface{ Tokens() []string }:
		return strings.Join(x.Tokens(), " ")
	}
	return ""
}

// Stats summarizes a synthesized set in the paper's §5.2 terms.
type Stats struct {
	Sentences        int
	DistinctPrograms int
	DistinctWords    int
	FunctionPairs    int // unique combinations of functions
	MaxDepth         int
}

// Summarize computes synthesis statistics.
func Summarize(examples []Example) Stats {
	progs := map[string]bool{}
	words := map[string]bool{}
	pairs := map[string]bool{}
	st := Stats{Sentences: len(examples)}
	for i := range examples {
		e := &examples[i]
		progs[signatureKey(e.Program)] = true
		for _, w := range e.Words {
			if !strings.HasPrefix(w, "__slot_") {
				words[w] = true
			}
		}
		pairs[strings.Join(e.Program.Functions(), "+")] = true
		if e.Depth > st.MaxDepth {
			st.MaxDepth = e.Depth
		}
	}
	st.DistinctPrograms = len(progs)
	st.DistinctWords = len(words)
	st.FunctionPairs = len(pairs)
	return st
}

// signatureKey is the program identity modulo slot numbering: slot IDs are
// normalized so that two programs differing only in slot allocation count as
// one distinct program.
func signatureKey(p *thingtalk.Program) string {
	toks := p.Tokens()
	out := make([]string, len(toks))
	n := 0
	for i, t := range toks {
		if strings.HasPrefix(t, "__slot_") {
			n++
			out[i] = "__slot"
			continue
		}
		out[i] = t
	}
	return strings.Join(out, " ")
}
