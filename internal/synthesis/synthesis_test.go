package synthesis

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func buildGrammar(t testing.TB, opt nltemplate.Options) (*nltemplate.Grammar, *thingpedia.Library) {
	t.Helper()
	lib := thingpedia.Builtin()
	return nltemplate.StandardGrammar(lib, opt), lib
}

func TestSynthesizeProducesValidPrograms(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	examples := Synthesize(g, Config{TargetPerRule: 40, MaxDepth: 4, Seed: 1, Schemas: lib})
	if len(examples) < 500 {
		t.Fatalf("too few synthesized examples: %d", len(examples))
	}
	for i := range examples {
		e := &examples[i]
		if err := thingtalk.Typecheck(e.Program, lib); err != nil {
			t.Fatalf("synthesized program fails typecheck: %v\nsentence: %s\nprogram: %s",
				err, e.Sentence(), e.Program)
		}
		// Canonical form is stable.
		c := thingtalk.Canonicalize(e.Program, lib)
		if c.String() != e.Program.String() {
			t.Fatalf("synthesized program not canonical:\n got: %s\nwant: %s", e.Program, c)
		}
		// Slots in the sentence and program must correspond.
		sslots := slotSet(e.Words)
		pslots := slotSet(e.Program.Tokens())
		if len(sslots) != len(pslots) {
			t.Fatalf("slot mismatch between sentence and program:\nsentence: %s\nprogram: %s", e.Sentence(), e.Program)
		}
		for s := range pslots {
			if !sslots[s] {
				t.Fatalf("program slot %s missing from sentence %q (program %s)", s, e.Sentence(), e.Program)
			}
		}
	}
}

func slotSet(words []string) map[string]bool {
	out := map[string]bool{}
	for _, w := range words {
		if strings.HasPrefix(w, "__slot_") {
			out[w] = true
		}
	}
	return out
}

func TestSynthesizeDeterministic(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	a := Synthesize(g, Config{TargetPerRule: 20, MaxDepth: 3, Seed: 7, Schemas: lib})
	b := Synthesize(g, Config{TargetPerRule: 20, MaxDepth: 3, Seed: 7, Schemas: lib})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sentence() != b[i].Sentence() || a[i].Program.String() != b[i].Program.String() {
			t.Fatalf("non-deterministic example %d", i)
		}
	}
}

func TestSynthesizeSeedChangesOutput(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	a := Synthesize(g, Config{TargetPerRule: 20, MaxDepth: 4, Seed: 1, Schemas: lib})
	b := Synthesize(g, Config{TargetPerRule: 20, MaxDepth: 4, Seed: 2, Schemas: lib})
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty synthesis")
	}
	same := 0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Sentence() == b[i].Sentence() {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical output")
	}
}

func TestSynthesizeDepthDistribution(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	examples := Synthesize(g, Config{TargetPerRule: 64, MaxDepth: 5, Seed: 3, Schemas: lib})
	byDepth := map[int]int{}
	for i := range examples {
		byDepth[examples[i].Depth]++
	}
	if byDepth[2] == 0 || byDepth[3] == 0 {
		t.Fatalf("expected examples at depths 2 and 3: %v", byDepth)
	}
	st := Summarize(examples)
	if st.DistinctPrograms == 0 || st.DistinctWords == 0 || st.FunctionPairs == 0 {
		t.Errorf("bad stats: %+v", st)
	}
	t.Logf("examples=%d depths=%v stats=%+v", len(examples), byDepth, st)
}

func TestSynthesizeCompoundAndFilterCoverage(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	examples := Synthesize(g, Config{TargetPerRule: 60, MaxDepth: 5, Seed: 5, Schemas: lib})
	var compound, filtered, passing, timers int
	for i := range examples {
		e := &examples[i]
		if e.Program.IsCompound() {
			compound++
		}
		if e.Program.HasFilter() {
			filtered++
		}
		if e.Program.HasParamPassing() {
			passing++
		}
		if e.Program.Stream.Kind == thingtalk.StreamTimer || e.Program.Stream.Kind == thingtalk.StreamAtTimer {
			timers++
		}
	}
	if compound == 0 || filtered == 0 || passing == 0 || timers == 0 {
		t.Errorf("coverage gap: compound=%d filtered=%d passing=%d timers=%d of %d",
			compound, filtered, passing, timers, len(examples))
	}
}

func TestSynthesizeFlagSubset(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.Options{})
	all := Synthesize(g, Config{TargetPerRule: 30, MaxDepth: 3, Seed: 1, Schemas: lib})
	basic := Synthesize(g, Config{TargetPerRule: 30, MaxDepth: 3, Seed: 1, Schemas: lib, Flag: "basic"})
	if len(basic) == 0 {
		t.Fatal("basic subset empty")
	}
	if len(basic) >= len(all) {
		t.Errorf("flag subset should shrink output: basic=%d all=%d", len(basic), len(all))
	}
}

func TestAggregateSynthesis(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.Options{Aggregates: true, GenericFilters: false})
	examples := Synthesize(g, Config{TargetPerRule: 40, MaxDepth: 3, Seed: 2, Schemas: lib})
	aggs := 0
	for i := range examples {
		if examples[i].Program.Query != nil && examples[i].Program.Query.Kind == thingtalk.QueryAggregate {
			aggs++
		}
	}
	if aggs == 0 {
		t.Error("no aggregation commands synthesized")
	}
}

func exampleKeys(examples []Example) []string {
	out := make([]string, len(examples))
	for i := range examples {
		out[i] = examples[i].Sentence() + " ||| " + examples[i].Program.String()
	}
	return out
}

// TestSynthesizeWorkersDeterministic asserts that sequential and parallel
// sampling produce the same example multiset (in fact the same sequence) for
// a fixed seed: the per-(depth, category) RNG streams and the deterministic
// merge make output independent of the worker count.
func TestSynthesizeWorkersDeterministic(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	seq := Synthesize(g, Config{TargetPerRule: 24, MaxDepth: 4, Seed: 11, Schemas: lib, Workers: 1})
	par := Synthesize(g, Config{TargetPerRule: 24, MaxDepth: 4, Seed: 11, Schemas: lib, Workers: 4})
	if len(seq) == 0 {
		t.Fatal("empty synthesis")
	}
	if len(seq) != len(par) {
		t.Fatalf("worker count changed output size: workers=1 %d vs workers=4 %d", len(seq), len(par))
	}
	a, b := exampleKeys(seq), exampleKeys(par)
	// Multiset equality (the contract)...
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("multiset mismatch at %d:\n workers=1: %s\n workers=4: %s", i, as[i], bs[i])
		}
	}
	// ...and the stronger sequence equality the merge guarantees.
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("order mismatch at %d:\n workers=1: %s\n workers=4: %s", i, a[i], b[i])
			break
		}
	}
}

// TestSynthesizeStreamMatchesSlice asserts the streaming API carries exactly
// the examples the slice API returns, in order.
func TestSynthesizeStreamMatchesSlice(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	cfg := Config{TargetPerRule: 20, MaxDepth: 4, Seed: 4, Schemas: lib, Workers: 3}
	want := Synthesize(g, cfg)
	var got []Example
	for e := range SynthesizeStream(context.Background(), g, cfg) {
		got = append(got, e)
	}
	if len(got) != len(want) {
		t.Fatalf("stream size %d != slice size %d", len(got), len(want))
	}
	a, b := exampleKeys(want), exampleKeys(got)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream example %d differs:\n slice:  %s\n stream: %s", i, a[i], b[i])
		}
	}
}

// TestSynthesizeStreamCancellation asserts that cancelling the context stops
// the stream: the channel closes without delivering the full set.
func TestSynthesizeStreamCancellation(t *testing.T) {
	g, lib := buildGrammar(t, nltemplate.DefaultOptions)
	cfg := Config{TargetPerRule: 64, MaxDepth: 5, Seed: 1, Schemas: lib}
	full := Synthesize(g, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ch := SynthesizeStream(ctx, g, cfg)
	got := 0
	for range 5 {
		if _, ok := <-ch; !ok {
			t.Fatal("stream closed before cancellation")
		}
		got++
	}
	cancel()
	timeout := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if got >= len(full) {
					t.Fatalf("cancellation delivered the full set (%d examples)", got)
				}
				return
			}
			got++
		case <-timeout:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	g, lib := buildGrammar(b, nltemplate.DefaultOptions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(g, Config{TargetPerRule: 30, MaxDepth: 4, Seed: int64(i), Schemas: lib})
	}
}
