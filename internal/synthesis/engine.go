package synthesis

import (
	"context"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/thingtalk"
)

// streamBuffer bounds the SynthesizeStream output channel so a slow consumer
// applies backpressure instead of forcing full materialization.
const streamBuffer = 256

// slotIDShift partitions the slot-ID space per task: task t mints IDs
// t<<slotIDShift+1, t<<slotIDShift+2, ... so concurrently sampled
// derivations never collide and the numbering is independent of scheduling.
// SlotIDs are ints, so the namespace width depends on the platform: 2^32
// IDs per task on 64-bit hosts, 2^20 on 32-bit hosts (ample for any scale a
// 32-bit address space can hold; the shift must stay below the int width or
// every task's namespace would collapse onto the same range).
const slotIDShift = 8 + 12*(bits.UintSize/32)

// sampler holds the cross-wave state: derivation pools and dedup sets per
// category. Within a depth wave each category is owned by exactly one task;
// pools are appended only during the sequential merge between waves, so
// tasks may read them freely while a wave is in flight.
type sampler struct {
	g   *nltemplate.Grammar
	cfg Config

	pools map[string][]*nltemplate.Derivation
	seen  map[string]map[string]bool
	// rulesByCat lists the eligible rules per category in deterministic
	// order.
	rulesByCat map[string][]*nltemplate.Rule
	cats       []string
}

func newSampler(g *nltemplate.Grammar, cfg Config) *sampler {
	if cfg.TargetPerRule <= 0 {
		cfg.TargetPerRule = DefaultConfig.TargetPerRule
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultConfig.MaxDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &sampler{
		g:          g,
		cfg:        cfg,
		pools:      map[string][]*nltemplate.Derivation{},
		seen:       map[string]map[string]bool{},
		rulesByCat: map[string][]*nltemplate.Rule{},
	}
	for _, cat := range g.Categories() {
		var rules []*nltemplate.Rule
		for _, r := range g.Rules(cat) {
			if cfg.Flag == "" || r.HasFlag(cfg.Flag) {
				rules = append(rules, r)
			}
		}
		if len(rules) > 0 {
			s.rulesByCat[cat] = rules
			s.cats = append(s.cats, cat)
			// Pre-create the dedup sets so tasks never write the outer
			// map concurrently.
			s.seen[cat] = map[string]bool{}
		}
	}
	return s
}

// run executes the depth waves, calling emit for every complete command in
// deterministic order. emit returning false, or ctx cancellation, stops the
// run early. Either argument may be nil.
func (s *sampler) run(ctx context.Context, emit func(Example) bool) {
	produced := 0
	for depth := 1; depth <= s.cfg.MaxDepth; depth++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		results := s.runWave(ctx, depth)
		// Deterministic merge: category registration order, generation
		// order within a category.
		for _, t := range results {
			if t == nil {
				continue
			}
			s.pools[t.cat] = append(s.pools[t.cat], t.derivs...)
			for i := range t.commands {
				produced++
				if emit != nil && !emit(t.commands[i]) {
					return
				}
			}
		}
		if s.cfg.MaxCommands > 0 && produced >= s.cfg.MaxCommands {
			return
		}
	}
}

// runWave samples every category at one depth. Tasks only read pools (frozen
// at depths < depth) and write task-local buffers plus their own category's
// dedup set, so they are data-race free by ownership.
func (s *sampler) runWave(ctx context.Context, depth int) []*task {
	results := make([]*task, len(s.cats))
	if s.cfg.Workers == 1 {
		for i := range s.cats {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			results[i] = s.runTask(depth, i)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx != nil && ctx.Err() != nil {
					continue
				}
				results[i] = s.runTask(depth, i)
			}
		}()
	}
	for i := range s.cats {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// task is one (category, depth) unit of work with its own RNG stream and
// slot-ID namespace.
type task struct {
	s     *sampler
	cat   string
	depth int
	rng   *rand.Rand
	seen  map[string]bool // the sampler's dedup set for cat, task-owned this wave

	slotBase  int
	slotCount int

	derivs   []*nltemplate.Derivation
	commands []Example
}

// runTask samples all rules of one category at one depth.
func (s *sampler) runTask(depth, catIdx int) *task {
	id := (depth-1)*len(s.cats) + catIdx
	t := &task{
		s:        s,
		cat:      s.cats[catIdx],
		depth:    depth,
		rng:      rand.New(rand.NewSource(params.DeriveSeed(s.cfg.Seed, "synthesis", id))),
		seen:     s.seen[s.cats[catIdx]],
		slotBase: id << slotIDShift,
	}
	for _, rule := range s.rulesByCat[t.cat] {
		t.sampleRule(rule)
	}
	return t
}

// target returns the per-rule sample budget at a depth: exponentially
// decreasing, as in the paper.
func (s *sampler) target(depth int) int {
	t := s.cfg.TargetPerRule >> uint(depth-2)
	if t < 1 {
		t = 1
	}
	return t
}

// sampleRule draws derivations for one rule whose result lands at the task's
// depth (i.e. whose deepest child has depth-1).
func (t *task) sampleRule(rule *nltemplate.Rule) {
	nts := rule.NonTerminals()
	// Split non-terminals into generators (constants, always depth 1) and
	// pool references.
	poolCats := make([]string, 0, len(nts))
	for _, i := range nts {
		ntCat := rule.RHS[i].NonTerm
		if _, isConst := nltemplate.IsConstCategory(ntCat); !isConst {
			poolCats = append(poolCats, ntCat)
		}
	}
	if len(poolCats) == 0 {
		// Leaf rule: exactly one shape; derives at depth 1 only.
		if t.depth != 1 {
			return
		}
		t.derive(rule, 1)
		return
	}
	if t.depth == 1 {
		return // rules with children cannot land at depth 1
	}
	// All referenced pools must be non-empty.
	for _, pc := range poolCats {
		if len(t.s.pools[pc]) == 0 {
			return
		}
	}
	t.derive(rule, t.s.target(t.depth))
}

// derive makes up to target*overdraw draws of children for the rule, keeping
// successful, novel derivations.
func (t *task) derive(rule *nltemplate.Rule, target int) {
	nts := rule.NonTerminals()
	attempts := target * 4
	kept := 0
	for a := 0; a < attempts && kept < target; a++ {
		children := make([]*nltemplate.Derivation, 0, len(nts))
		maxChildDepth := 0
		ok := true
		for _, i := range nts {
			ntCat := rule.RHS[i].NonTerm
			if ct, isConst := nltemplate.IsConstCategory(ntCat); isConst {
				children = append(children, t.freshSlot(ct))
				continue
			}
			pool := t.s.pools[ntCat]
			// Only children strictly shallower than the target depth.
			d := t.pickShallower(pool)
			if d == nil {
				ok = false
				break
			}
			children = append(children, d)
			if d.Depth > maxChildDepth {
				maxChildDepth = d.Depth
			}
		}
		if !ok {
			break
		}
		// Novel depth requires the deepest child at depth-1 (otherwise the
		// same derivation was already reachable at a lower depth).
		if len(children) > 0 && containsPoolChild(rule, nts) && maxChildDepth != t.depth-1 {
			continue
		}
		d := nltemplate.Derive(rule, children)
		if d == nil {
			continue
		}
		if t.keep(rule, d) {
			kept++
		}
	}
}

func containsPoolChild(rule *nltemplate.Rule, nts []int) bool {
	for _, i := range nts {
		if _, isConst := nltemplate.IsConstCategory(rule.RHS[i].NonTerm); !isConst {
			return true
		}
	}
	return false
}

// pickShallower draws a uniform random pool element of depth < the task's
// depth.
func (t *task) pickShallower(pool []*nltemplate.Derivation) *nltemplate.Derivation {
	// Pools are appended in depth order, so all eligible elements form a
	// prefix; during wave d the pools hold only depths < d, making the scan
	// a cheap guard.
	hi := len(pool)
	for hi > 0 && pool[hi-1].Depth >= t.depth {
		hi--
	}
	if hi == 0 {
		return nil
	}
	return pool[t.rng.Intn(hi)]
}

// freshSlot mints a new typed constant slot derivation from the task's
// private ID namespace.
func (t *task) freshSlot(ct thingtalk.Type) *nltemplate.Derivation {
	t.slotCount++
	v := thingtalk.SlotValue(ct, t.slotBase+t.slotCount)
	return &nltemplate.Derivation{
		Words: v.Tokens(),
		Value: v,
		Depth: 1,
	}
}

// keep deduplicates and stores a derivation; command derivations are also
// canonicalized and collected as output examples.
func (t *task) keep(rule *nltemplate.Rule, d *nltemplate.Derivation) bool {
	key := d.Sentence() + " ||| " + valueKey(d.Value)
	if t.seen[key] {
		return false
	}
	t.seen[key] = true
	t.derivs = append(t.derivs, d)
	if t.cat == nltemplate.CatCommand {
		prog, ok := d.Value.(*thingtalk.Program)
		if !ok {
			return false
		}
		if t.s.cfg.Schemas != nil {
			prog = thingtalk.Canonicalize(prog, t.s.cfg.Schemas)
		}
		t.commands = append(t.commands, Example{
			Words:   d.Words,
			Program: prog,
			Depth:   d.Depth,
			Rule:    rule.Name,
		})
	}
	return true
}
