package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaEscapeAnalyzer enforces the graph-lease lifetime contract: a value
// obtained from an arena (a method call on an arena-source type, or a call to
// a returns-arena function) is only valid until the arena is reset or its
// graph returned to the pool. Storing such a value into a struct field, a
// package-level variable, or returning it lets it outlive the lease.
//
// Escapes are legal in two declared places: fields of arena-scoped types
// (their lifetime is bounded by the same lease), and functions annotated
// returns-arena (their callers inherit the taint).
var ArenaEscapeAnalyzer = &Analyzer{
	Name: "arena-escape",
	Doc:  "arena/pool-backed values must not outlive the graph lease that produced them",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *Pass) {
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		// An arena-source type's own methods are the allocator: they carve
		// and recycle the very memory whose lifetime the pass polices.
		if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
			if tn := recvNamed(obj); tn != nil && pass.Prog.ArenaSource(tn) {
				return
			}
		}
		ae := &arenaEscape{pass: pass, fd: fd, tainted: map[types.Object]bool{}}
		ae.block(fd.Body)
	})
}

type arenaEscape struct {
	pass *Pass
	fd   *ast.FuncDecl
	// tainted holds local variables currently bound to arena-backed values.
	tainted map[types.Object]bool
}

// taintedExpr reports whether evaluating e yields an arena-backed value.
func (ae *arenaEscape) taintedExpr(e ast.Expr) bool {
	info := ae.pass.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ae.tainted[info.Uses[e]]
	case *ast.CallExpr:
		obj := calleeObj(info, e)
		if obj == nil {
			return false
		}
		if b, ok := obj.(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
			// append keeps (or reuses) the backing of a tainted slice and
			// taints the result if any appended element is arena-backed.
			for _, arg := range e.Args {
				if ae.taintedExpr(arg) {
					return true
				}
			}
			return false
		}
		if ae.pass.Prog.ReturnsArena(obj) {
			return true
		}
		if tn := recvNamed(obj); tn != nil && ae.pass.Prog.ArenaSource(tn) {
			return true
		}
		return false
	case *ast.IndexExpr:
		return ae.taintedExpr(e.X)
	case *ast.SliceExpr:
		return ae.taintedExpr(e.X)
	case *ast.StarExpr:
		return ae.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return ae.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ae.taintedExpr(el) {
				return true
			}
		}
		return false
	}
	return false
}

// block walks statements in order so taint assignments are visible to later
// uses in the same body.
func (ae *arenaEscape) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		ae.stmt(st)
	}
}

func (ae *arenaEscape) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		ae.assign(st)
	case *ast.ReturnStmt:
		ae.returnStmt(st)
	case *ast.BlockStmt:
		ae.block(st)
	case *ast.IfStmt:
		ae.stmt(orNop(st.Init))
		ae.block(st.Body)
		if st.Else != nil {
			ae.stmt(st.Else)
		}
	case *ast.ForStmt:
		ae.stmt(orNop(st.Init))
		ae.block(st.Body)
	case *ast.RangeStmt:
		// Ranging over a tainted slice taints the element variable.
		if ae.taintedExpr(st.X) && st.Value != nil {
			if id, ok := st.Value.(*ast.Ident); ok {
				if obj := ae.defOrUse(id); obj != nil {
					ae.tainted[obj] = true
				}
			}
		}
		ae.block(st.Body)
	case *ast.SwitchStmt:
		ae.stmt(orNop(st.Init))
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					ae.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					ae.stmt(s)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && ae.taintedExpr(vs.Values[i]) {
						if obj := ae.pass.Pkg.Info.Defs[name]; obj != nil {
							ae.tainted[obj] = true
						}
					}
				}
			}
		}
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
		// Calls may consume tainted values; consumption inside the lease is
		// fine, only stores and returns escape.
	case *ast.LabeledStmt:
		ae.stmt(st.Stmt)
	}
}

func orNop(st ast.Stmt) ast.Stmt {
	if st == nil {
		return &ast.EmptyStmt{}
	}
	return st
}

func (ae *arenaEscape) defOrUse(id *ast.Ident) types.Object {
	if obj := ae.pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return ae.pass.Pkg.Info.Uses[id]
}

func (ae *arenaEscape) assign(st *ast.AssignStmt) {
	info := ae.pass.Pkg.Info
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break // multi-value call/comma-ok: calls never taint tuples here
		}
		rhsTainted := ae.taintedExpr(st.Rhs[i])
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := ae.defOrUse(lhs)
			if obj == nil {
				continue
			}
			if _, isVar := obj.(*types.Var); isVar && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				// Package-level variable: storing a tainted value escapes.
				if rhsTainted {
					ae.pass.Reportf(st.Pos(), "arena-backed value stored in package-level var %s outlives its graph lease", lhs.Name)
				}
				continue
			}
			ae.tainted[obj] = rhsTainted // reassignment also clears taint
		case *ast.SelectorExpr:
			if !rhsTainted {
				continue
			}
			owner := namedOf(info.TypeOf(lhs.X))
			if owner != nil && ae.pass.Prog.ArenaScoped(owner) {
				continue // declared lease-bounded container
			}
			if root := rootIdent(lhs.X); root != nil {
				if obj := ae.defOrUse(root); obj != nil && ae.lhsIsArenaScoped(obj) {
					continue
				}
			}
			name := "field"
			if owner != nil {
				name = owner.Name() + "." + lhs.Sel.Name
			}
			ae.pass.Reportf(st.Pos(), "arena-backed value stored in %s, which is not arena-scoped; it outlives the graph lease", name)
		case *ast.IndexExpr:
			if !rhsTainted {
				continue
			}
			// Writing into an element of a non-local container: flag stores
			// into fields/globals, leave local slices alone.
			if root := rootIdent(lhs.X); root != nil {
				obj := ae.defOrUse(root)
				if obj != nil && obj.Pkg() != nil {
					if _, isVar := obj.(*types.Var); isVar && obj.Parent() == obj.Pkg().Scope() {
						ae.pass.Reportf(st.Pos(), "arena-backed value stored in package-level container %s outlives its graph lease", root.Name)
						continue
					}
				}
			}
			if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
				owner := namedOf(info.TypeOf(sel.X))
				if owner != nil && ae.pass.Prog.ArenaScoped(owner) {
					continue
				}
				name := "field " + sel.Sel.Name
				if owner != nil {
					name = "field " + owner.Name() + "." + sel.Sel.Name
				}
				ae.pass.Reportf(st.Pos(), "arena-backed value stored in %s, which is not arena-scoped; it outlives the graph lease", name)
			}
		}
	}
}

// lhsIsArenaScoped reports whether the assignment target's root variable has
// an arena-scoped type (covers x.a.b = t where x itself is the scoped struct).
func (ae *arenaEscape) lhsIsArenaScoped(obj types.Object) bool {
	tn := namedOf(obj.Type())
	return tn != nil && ae.pass.Prog.ArenaScoped(tn)
}

func (ae *arenaEscape) returnStmt(st *ast.ReturnStmt) {
	for _, res := range st.Results {
		if !ae.taintedExpr(res) {
			continue
		}
		obj := ae.pass.Pkg.Info.Defs[ae.fd.Name]
		if obj != nil && ae.pass.Prog.ReturnsArena(obj) {
			continue // declared: callers inherit the lease
		}
		if tn := recvNamed(obj); tn != nil && ae.pass.Prog.ArenaScoped(tn) {
			continue // methods of lease-bounded types hand out lease-bounded views
		}
		ae.pass.Reportf(st.Pos(), "arena-backed value returned from %s; annotate //genielint:returns-arena if callers respect the graph lease", ae.fd.Name.Name)
	}
}
