package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolRetentionAnalyzer enforces two recycling contracts:
//
//  1. Get/Put pairing — a value obtained from sync.Pool.Get (or Get on a type
//     annotated //genielint:pool) must be Put back in the same function, or
//     explicitly handed off (returned, stored into a field/global, or passed
//     to another function that owns it from there). It must never be used
//     after the Put that surrenders it.
//
//  2. Clone-before-mutate — a function that receives values of a type
//     annotated //genielint:pooled (shared through pools across goroutines)
//     may not mutate them in place; it must Clone first. Methods of the
//     pooled type itself are exempt (Clone has to mutate its copy).
var PoolRetentionAnalyzer = &Analyzer{
	Name: "pool-retention",
	Doc:  "pool Get results are Put or handed off, never used after Put; pooled values are cloned before mutation",
	Run:  runPoolRetention,
}

func runPoolRetention(pass *Pass) {
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		checkGetPut(pass, fd)
		checkCloneBeforeMutate(pass, fd)
	})
}

// isPoolObj reports whether a method object is <pool>.Get or <pool>.Put for a
// recognized pool type (sync.Pool, or any type annotated pool).
func isPoolMethod(pass *Pass, obj types.Object, name string) bool {
	if obj == nil || obj.Name() != name {
		return false
	}
	tn := recvNamed(obj)
	if tn == nil {
		return false
	}
	if pkgPathOf(tn) == "sync" && tn.Name() == "Pool" {
		return true
	}
	return pass.Prog.PoolType(tn)
}

// getResult peels the type assertion conventionally wrapped around pool gets
// (pool.Get().(*T)) and returns the inner Get call, or nil.
func getCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if isPoolMethod(pass, calleeObj(pass.Pkg.Info, call), "Get") {
		return call
	}
	return nil
}

type getTracker struct {
	obj     types.Object
	pos     ast.Node
	put     bool // Put reached (directly or deferred)
	handoff bool // returned, stored, or passed on — ownership transferred
	putAt   ast.Node
}

func checkGetPut(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var tracked []*getTracker
	byObj := map[types.Object]*getTracker{}

	// First sweep: find Get results bound to locals.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if getCall(pass, rhs) == nil || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			t := &getTracker{obj: obj, pos: as}
			tracked = append(tracked, t)
			byObj[obj] = t
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Second sweep, in source order: record Puts, handoffs, and uses after a
	// non-deferred Put. Deferred Puts satisfy the pairing without creating a
	// use-after window.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isPoolMethod(pass, calleeObj(info, n.Call), "Put") {
				for _, arg := range n.Call.Args {
					if t := trackerFor(info, byObj, arg); t != nil {
						t.put = true
					}
				}
				return false // args inside the defer are not "uses after Put"
			}
			markHandoffArgs(info, byObj, n.Call)
			return true
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			if isPoolMethod(pass, obj, "Put") {
				for _, arg := range n.Args {
					if t := trackerFor(info, byObj, arg); t != nil {
						t.put = true
						t.putAt = n
					}
				}
				return false
			}
			// Passing the value to any other call transfers responsibility
			// (the release helper pattern: release(dc) Puts internally).
			markHandoffArgs(info, byObj, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if t := trackerFor(info, byObj, res); t != nil {
					t.handoff = true
				}
			}
		case *ast.AssignStmt:
			// Storing the value into anything other than a fresh local is a
			// handoff (field, global, map/slice slot).
			for i, rhs := range n.Rhs {
				t := trackerFor(info, byObj, rhs)
				if t == nil || i >= len(n.Lhs) {
					continue
				}
				if _, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident); !isIdent {
					t.handoff = true
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if t := byObj[obj]; t != nil && t.put && t.putAt != nil && n.Pos() > t.putAt.End() {
				pass.Reportf(n.Pos(), "%s used after being Put back in its pool", n.Name)
				t.putAt = nil // one report per window
			}
		}
		return true
	})

	for _, t := range tracked {
		if !t.put && !t.handoff {
			pass.Reportf(t.pos.Pos(), "pool Get result %s is never Put back (or handed off); the pool drains under load", t.obj.Name())
		}
	}
}

func trackerFor(info *types.Info, byObj map[types.Object]*getTracker, e ast.Expr) *getTracker {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return byObj[info.Uses[id]]
}

func markHandoffArgs(info *types.Info, byObj map[types.Object]*getTracker, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if t := trackerFor(info, byObj, arg); t != nil {
			t.handoff = true
		}
	}
}

// checkCloneBeforeMutate flags in-place mutation of pooled-typed parameters.
func checkCloneBeforeMutate(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	obj := info.Defs[fd.Name]
	if tn := recvNamed(obj); tn != nil && pass.Prog.Pooled(tn) {
		return // the pooled type's own methods (Clone, pool management) may mutate
	}

	// Collect parameters (and receiver) whose type is pooled, or a
	// slice/pointer of a pooled type.
	watched := map[types.Object]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				p := info.Defs[name]
				if p == nil {
					continue
				}
				if tn := pooledElem(pass, p.Type()); tn != nil {
					watched[p] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	if len(watched) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// d = d.Clone() (or d := shared.Clone()) severs sharing: stop
		// watching the rebound variable.
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := info.Defs[id]
			if lobj == nil {
				lobj = info.Uses[id]
			}
			if watched[lobj] && isCloneCall(info, as.Rhs[i]) {
				delete(watched, lobj)
			}
		}
		// Mutation through a watched root: d.Field = x, d.Field[i] = x,
		// d.Field = append(d.Field, ...).
		for _, lhs := range as.Lhs {
			if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
				continue // rebinding the variable itself is not a mutation
			}
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			robj := info.Uses[root]
			if robj == nil {
				robj = info.Defs[root]
			}
			if !watched[robj] {
				continue
			}
			tn := pooledElem(pass, robj.Type())
			name := "pooled value"
			if tn != nil {
				name = "pooled " + tn.Name()
			}
			pass.Reportf(as.Pos(), "%s %s mutated in place; Clone before mutating — it is shared through a pool", name, root.Name)
		}
		return true
	})
}

// pooledElem unwraps pointers and slices and returns the pooled named type,
// or nil.
func pooledElem(pass *Pass, t types.Type) *types.TypeName {
	for t != nil {
		t = types.Unalias(t)
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Named:
			if pass.Prog.Pooled(tt.Obj()) {
				return tt.Obj()
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// isCloneCall reports whether e is a call to a method whose name contains
// Clone or Copy (d.Clone(), deepCopy(d), ...).
func isCloneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	return strings.Contains(name, "Clone") || strings.Contains(name, "Copy")
}
