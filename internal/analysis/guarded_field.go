package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedFieldAnalyzer enforces `// guarded by <mu>` field annotations: a
// guarded field may only be read or written while the declared sibling mutex
// is held on the same receiver chain (s.f guarded by mu requires s.mu locked).
// The walker is lexical and flow-light: Lock/RLock adds the mutex to the held
// set, Unlock/RUnlock removes it, deferred unlocks hold to function end,
// branch bodies get copies of the held set, and function literals start cold
// (they may run on another goroutine).
//
// It also flags atomic/direct mixing: a field passed to sync/atomic functions
// anywhere in the package must never be accessed directly.
var GuardedFieldAnalyzer = &Analyzer{
	Name: "guarded-field",
	Doc:  "guarded-by fields are only touched under their mutex; atomic fields are never accessed directly",
	Run:  runGuardedField,
}

func runGuardedField(pass *Pass) {
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		w := &lockWalker{
			pass:  pass,
			fresh: freshLocals(pass, fd),
			held:  map[string]bool{},
		}
		w.stmts(fd.Body.List)
	})
	checkAtomicMixing(pass)
}

// freshLocals collects variables bound to values constructed in this function
// (composite literals, new(T)). Initializing their fields before publication
// does not need the lock.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	info := pass.Pkg.Info
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue // only fresh at the defining :=
			}
			if isConstruction(info, as.Rhs[i]) {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func isConstruction(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return isConstruction(info, e.X)
	case *ast.CallExpr:
		if obj := calleeObj(info, e); obj != nil {
			if b, ok := obj.(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

type lockWalker struct {
	pass  *Pass
	fresh map[types.Object]bool
	// held maps mutex access paths ("b.closeMu", "sk.mu") to true while the
	// lexical walk is inside the locked region.
	held map[string]bool
}

func (w *lockWalker) copyHeld() map[string]bool {
	c := make(map[string]bool, len(w.held))
	for k := range w.held {
		c[k] = true
	}
	return c
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, st := range list {
		w.stmt(st)
	}
}

func (w *lockWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if mu, locking, ok := mutexOp(w.pass.Pkg.Info, call); ok {
				if locking {
					w.held[mu] = true
				} else {
					delete(w.held, mu)
				}
				return
			}
		}
		w.checkExpr(st.X)
	case *ast.DeferStmt:
		if _, locking, ok := mutexOp(w.pass.Pkg.Info, st.Call); ok && !locking {
			return // deferred unlock: held to function end
		}
		w.checkExpr(st.Call)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.checkExpr(st.Cond)
		w.withCopy(func(inner *lockWalker) { inner.stmts(st.Body.List) })
		if st.Else != nil {
			w.withCopy(func(inner *lockWalker) { inner.stmt(st.Else) })
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond)
		}
		w.withCopy(func(inner *lockWalker) { inner.stmts(st.Body.List) })
	case *ast.RangeStmt:
		w.checkExpr(st.X)
		w.withCopy(func(inner *lockWalker) { inner.stmts(st.Body.List) })
	case *ast.BlockStmt:
		w.withCopy(func(inner *lockWalker) { inner.stmts(st.List) })
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.withCopy(func(inner *lockWalker) { inner.stmts(cc.Body) })
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.withCopy(func(inner *lockWalker) { inner.stmts(cc.Body) })
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.withCopy(func(inner *lockWalker) {
					if cc.Comm != nil {
						inner.stmt(cc.Comm)
					}
					inner.stmts(cc.Body)
				})
			}
		}
	case *ast.GoStmt:
		w.checkExpr(st.Call) // the literal body is walked cold via checkExpr
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e)
		}
	case *ast.SendStmt:
		w.checkExpr(st.Chan)
		w.checkExpr(st.Value)
	case *ast.IncDecStmt:
		w.checkExpr(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

func (w *lockWalker) withCopy(fn func(*lockWalker)) {
	inner := &lockWalker{pass: w.pass, fresh: w.fresh, held: w.copyHeld()}
	fn(inner)
}

// checkExpr flags guarded-field selectors reachable in e. Function literals
// are walked with an empty held set: they may run later, on another
// goroutine, when the lock is long gone.
func (w *lockWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cold := &lockWalker{pass: w.pass, fresh: w.fresh, held: map[string]bool{}}
			cold.stmts(n.Body.List)
			return false
		case *ast.SelectorExpr:
			w.checkSelector(n)
		}
		return true
	})
}

func (w *lockWalker) checkSelector(sel *ast.SelectorExpr) {
	info := w.pass.Pkg.Info
	obj := info.Uses[sel.Sel]
	if obj == nil {
		if s, ok := info.Selections[sel]; ok {
			obj = s.Obj()
		}
	}
	if obj == nil {
		return
	}
	mu := w.pass.Prog.GuardedBy(obj)
	if mu == "" {
		return
	}
	if root := rootIdent(sel.X); root != nil {
		robj := info.Uses[root]
		if robj == nil {
			robj = info.Defs[root]
		}
		if w.fresh[robj] {
			return // initializing a value constructed here, before publication
		}
	}
	key := types.ExprString(sel.X) + "." + mu
	if !w.held[key] {
		w.pass.Reportf(sel.Pos(), "field %s is guarded by %s but accessed without %s held", sel.Sel.Name, mu, key)
	}
}

// mutexOp decodes m.Lock()/RLock()/Unlock()/RUnlock() calls on mutex-typed
// fields or variables, returning the mutex access path and lock direction.
func mutexOp(info *types.Info, call *ast.CallExpr) (mu string, locking, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return "", false, false
	}
	if !isMutexType(namedOf(info.TypeOf(sel.X))) {
		return "", false, false
	}
	return types.ExprString(sel.X), locking, true
}

// checkAtomicMixing flags package fields that are touched both through
// sync/atomic calls (&x.f passed to atomic.LoadInt64 etc.) and directly.
func checkAtomicMixing(pass *Pass) {
	info := pass.Pkg.Info
	atomicFields := map[types.Object]bool{}
	atomicOK := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if pkgPathOf(obj) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fobj := info.Uses[sel.Sel]; fobj != nil {
					atomicFields[fobj] = true
					atomicOK[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOK[sel] {
				return true
			}
			if fobj := info.Uses[sel.Sel]; fobj != nil && atomicFields[fobj] {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; direct access races — use atomic loads/stores", sel.Sel.Name)
			}
			return true
		})
	}
}
