package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and typechecked package ready for analysis.
// Only packages inside the module under analysis carry syntax and type info;
// dependencies (stdlib) are typechecked just deeply enough to supply their
// exported type surfaces.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Errors holds loader or typecheck problems; analysis proceeds
	// best-effort over whatever typechecked.
	Errors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -deps` from dir, parses every package
// in the dependency closure, and typechecks them in dependency order with a
// purely stdlib driver (go/parser + go/types). It returns the module's own
// packages — the analyzable set — in deterministic import-path order.
// Standard-library dependencies are typechecked from GOROOT source so the
// module packages see real types for context.Context, sync.Pool, and friends.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}

	fset := token.NewFileSet()
	ld := &loadState{
		fset:   fset,
		byPath: byPath,
		typed:  make(map[string]*types.Package),
		failed: make(map[string]error),
		// The source importer resolves any stdlib package the go list
		// closure missed (e.g. imports reached only through build-tagged
		// files) without leaving the stdlib driver.
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var out []*Package
	for _, m := range metas {
		if m.Standard || m.Module == nil {
			continue // dependencies are typechecked on demand via Import
		}
		pkg := ld.analyzePackage(m)
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// goList shells out to the go command for package metadata; it is the one
// piece of the toolchain the driver leans on (module resolution), keeping the
// loader itself dependency-free.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var metas []*listPkg
	for dec.More() {
		m := new(listPkg)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

type loadState struct {
	fset     *token.FileSet
	byPath   map[string]*listPkg
	typed    map[string]*types.Package
	failed   map[string]error
	fallback types.Importer
	// stack guards against import cycles (go list would have reported them,
	// but -e keeps going).
	stack []string
}

// analyzePackage parses and typechecks one module package with full
// types.Info recording.
func (ld *loadState) analyzePackage(m *listPkg) *Package {
	pkg := &Package{ImportPath: m.ImportPath, Dir: m.Dir, Fset: ld.fset}
	if m.Error != nil {
		pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", m.Error.Err))
	}
	files, errs := ld.parseFiles(m)
	pkg.Files = files
	pkg.Errors = append(pkg.Errors, errs...)
	if len(files) == 0 {
		return pkg
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return ld.importPath(path, m)
		}),
		Error: func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := cfg.Check(m.ImportPath, ld.fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	ld.typed[m.ImportPath] = tpkg
	return pkg
}

// importPath supplies the type surface for one import: already-typechecked
// packages are reused; module-internal dependencies are typechecked through
// the same driver; everything else (stdlib) goes through the GOROOT source
// importer.
func (ld *loadState) importPath(path string, from *listPkg) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if from != nil && from.ImportMap != nil {
		if mapped, ok := from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if tp, ok := ld.typed[path]; ok && tp != nil {
		return tp, nil
	}
	if err, ok := ld.failed[path]; ok {
		return nil, err
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
	}
	m := ld.byPath[path]
	if m == nil || m.Standard || m.Module == nil {
		tp, err := ld.fallback.Import(path)
		if err != nil {
			ld.failed[path] = err
			return nil, err
		}
		ld.typed[path] = tp
		return tp, nil
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()
	files, errs := ld.parseFiles(m)
	if len(files) == 0 {
		err := fmt.Errorf("analysis: no parseable files in %s: %v", path, errs)
		ld.failed[path] = err
		return nil, err
	}
	cfg := &types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			return ld.importPath(p, m)
		}),
	}
	tp, err := cfg.Check(m.ImportPath, ld.fset, files, nil)
	if err != nil && tp == nil {
		ld.failed[path] = err
		return nil, err
	}
	ld.typed[path] = tp
	return tp, nil
}

// parseFiles parses a package's compiled Go files with comments retained.
func (ld *loadState) parseFiles(m *listPkg) ([]*ast.File, []error) {
	var files []*ast.File
	var errs []error
	for _, name := range m.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		files = append(files, f)
	}
	return files, errs
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModulePackages filters a loaded set down to packages whose import path has
// the module prefix (used by the CLI to scope analysis to the repo).
func ModulePackages(pkgs []*Package, module string) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if p.ImportPath == module || strings.HasPrefix(p.ImportPath, module+"/") {
			out = append(out, p)
		}
	}
	return out
}
