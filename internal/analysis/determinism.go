package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer enforces bit-reproducibility in packages annotated
// //genielint:deterministic (synthesis, augment, experiments, params): no
// wall-clock reads, no draws from the global math/rand stream (per-stream
// *rand.Rand values with derived seeds are fine — that is the repo's
// parallel-determinism design), and no map iteration that feeds ordered
// output. The collect-keys-then-sort idiom is recognized: a map range whose
// only emission is appending to slices that are all sorted later in the same
// function stays silent.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages may not read clocks, the global rand stream, or emit from unordered map ranges",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pass.Dirs.Deterministic {
		return
	}
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, n)
			}
			return true
		})
	})
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.Pkg.Info, call)
	if obj == nil {
		return
	}
	switch pkgPathOf(obj) {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in a deterministic package; thread a logical clock or drop the timing from output", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on a seeded *rand.Rand are the sanctioned per-stream
		// pattern; only package-level draws hit the shared global stream.
		// New/NewSource/... construct those streams and are fine.
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		switch obj.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(), "global %s.%s stream in a deterministic package; use a seeded *rand.Rand (params.DeriveSeed)", obj.Pkg().Name(), obj.Name())
	}
}

// checkMapRange flags a map-range body that emits in iteration order —
// channel sends, writer calls, or appends to slices that are not all sorted
// after the loop.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ordered := false // sends/writes: order-dependent with no sort escape hatch
	var appended []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if tgt, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					obj := info.Uses[tgt]
					if obj == nil {
						obj = info.Defs[tgt]
					}
					if obj != nil {
						appended = append(appended, obj)
						continue
					}
				}
				ordered = true // appending into a field/element we can't trace
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "Printf", "Fprintf", "Print", "Println":
					ordered = true
				}
			}
		case *ast.SendStmt:
			ordered = true
		}
		return true
	})
	if !ordered && len(appended) == 0 {
		return // pure accumulation (map writes, counters) is order-insensitive
	}
	if !ordered {
		allSorted := true
		for _, obj := range appended {
			if !sortedAfter(info, fd.Body, obj, rng.End()) {
				allSorted = false
				break
			}
		}
		if allSorted {
			return // collect-then-sort idiom
		}
	}
	pass.Reportf(rng.Pos(), "map iteration feeds ordered output in a deterministic package; sort the keys first")
}

// sortedAfter reports whether obj is passed to a sort/slices call after pos
// in the function body (sort.Strings(keys), slices.Sort(keys), ...).
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		callee := calleeObj(info, call)
		switch pkgPathOf(callee) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && info.Uses[root] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
