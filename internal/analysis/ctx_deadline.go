package analysis

import (
	"go/ast"
)

// CtxDeadlineAnalyzer enforces deadline propagation in packages annotated
// //genielint:ctx-strict (serve, fleet, gateway): a request path must thread
// its incoming context, so context.Background()/context.TODO() — which sever
// the deadline and cancellation chain — are only legal inside functions
// annotated //genielint:ctx-root <reason> (background probers, interface
// adapters whose contract has no ctx parameter). http.NewRequest is flagged
// for the same reason: it builds a context.Background() request.
var CtxDeadlineAnalyzer = &Analyzer{
	Name: "ctx-deadline",
	Doc:  "request paths must propagate the incoming ctx; new root contexts need an annotated reason",
	Run:  runCtxDeadline,
}

func runCtxDeadline(pass *Pass) {
	if !pass.Dirs.CtxStrict {
		return
	}
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil && pass.Prog.CtxRoot(obj) {
			return // declared context root; closures inside inherit the license
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.Pkg.Info, call)
			if obj == nil {
				return true
			}
			switch pkgPathOf(obj) {
			case "context":
				switch obj.Name() {
				case "Background", "TODO":
					pass.Reportf(call.Pos(), "context.%s severs the request deadline in a ctx-strict package; thread the incoming ctx or annotate //genielint:ctx-root <why>", obj.Name())
				}
			case "net/http":
				if obj.Name() == "NewRequest" {
					pass.Reportf(call.Pos(), "http.NewRequest builds a context.Background() request; use http.NewRequestWithContext with the incoming ctx")
				}
			}
			return true
		})
	})
}
