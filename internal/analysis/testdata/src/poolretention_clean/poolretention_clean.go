// Package poolretentionclean is the clean twin of the poolretention fixture:
// every Get is Put or handed off, nothing is touched after Put, and pooled
// derivations are cloned before mutation.
package poolretentionclean

import "sync"

type decodeCtx struct{ buf []int }

var ctxPool = sync.Pool{New: func() any { return new(decodeCtx) }}

func paired() int {
	dc := ctxPool.Get().(*decodeCtx)
	n := len(dc.buf)
	ctxPool.Put(dc)
	return n
}

func deferred() int {
	dc := ctxPool.Get().(*decodeCtx)
	defer ctxPool.Put(dc)
	return len(dc.buf)
}

func release(dc *decodeCtx) { ctxPool.Put(dc) }

func viaHelper() int {
	dc := ctxPool.Get().(*decodeCtx)
	n := len(dc.buf)
	release(dc)
	return n
}

//genielint:pooled
type Derivation struct {
	Words []string
	Value any
}

func (d *Derivation) Clone() *Derivation {
	return &Derivation{Words: append([]string(nil), d.Words...), Value: d.Value}
}

func clonedFirst(d *Derivation) *Derivation {
	d = d.Clone()
	d.Words = append(d.Words, "the")
	return d
}

func readOnly(d *Derivation) int {
	return len(d.Words)
}
