// Package guardedfieldclean is the clean twin of the guardedfield fixture:
// every guarded access is under its mutex, and the atomic field is only
// touched through sync/atomic.
package guardedfieldclean

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

type stats struct {
	hits int64
}

func (s *stats) add()        { atomic.AddInt64(&s.hits, 1) }
func (s *stats) read() int64 { return atomic.LoadInt64(&s.hits) }
