// Package poolretention seeds recycling bugs the pool-retention pass must
// catch: leaked Gets, use-after-Put, and the PR 1 bug class — semantic
// functions mutating shared pooled derivations in place.
package poolretention

import "sync"

type decodeCtx struct{ buf []int }

var ctxPool = sync.Pool{New: func() any { return new(decodeCtx) }}

func badNoPut() int {
	dc := ctxPool.Get().(*decodeCtx) // want `never Put back`
	return len(dc.buf)
}

func badUseAfterPut() int {
	dc := ctxPool.Get().(*decodeCtx)
	ctxPool.Put(dc)
	return len(dc.buf) // want `used after being Put`
}

func okPaired() int {
	dc := ctxPool.Get().(*decodeCtx)
	n := len(dc.buf)
	ctxPool.Put(dc)
	return n
}

func okDeferred() int {
	dc := ctxPool.Get().(*decodeCtx)
	defer ctxPool.Put(dc)
	return len(dc.buf)
}

func okHandoffReturn() *decodeCtx {
	dc := ctxPool.Get().(*decodeCtx)
	return dc
}

func release(dc *decodeCtx) { ctxPool.Put(dc) }

func okHandoffHelper() int {
	dc := ctxPool.Get().(*decodeCtx)
	n := len(dc.buf)
	release(dc)
	return n
}

// graphPool mimics nn.GraphPool, a recycling container outside sync.Pool.
//
//genielint:pool
type graphPool struct{ p sync.Pool }

func (gp *graphPool) Get() *decodeCtx {
	c, _ := gp.p.Get().(*decodeCtx)
	if c == nil {
		c = new(decodeCtx)
	}
	return c
}

func (gp *graphPool) Put(c *decodeCtx) { gp.p.Put(c) }

var graphs graphPool

func badCustomPoolNoPut() int {
	g := graphs.Get() // want `never Put back`
	return len(g.buf)
}

func okCustomPoolPaired() int {
	g := graphs.Get()
	defer graphs.Put(g)
	return len(g.buf)
}

// Derivation mimics nltemplate.Derivation, shared through sampler pools.
//
//genielint:pooled
type Derivation struct {
	Words []string
	Value any
}

func (d *Derivation) Clone() *Derivation {
	return &Derivation{Words: append([]string(nil), d.Words...), Value: d.Value}
}

// badSemantic reproduces the PR 1 bug: a semantic function appending to a
// pooled derivation it does not own.
func badSemantic(d *Derivation) *Derivation {
	d.Words = append(d.Words, "the") // want `pooled Derivation d mutated in place`
	return d
}

func badFieldWrite(d *Derivation, v any) {
	d.Value = v // want `mutated in place`
}

func okClonedFirst(d *Derivation) *Derivation {
	d = d.Clone()
	d.Words = append(d.Words, "the")
	return d
}

func okReadOnly(d *Derivation) int {
	return len(d.Words)
}
