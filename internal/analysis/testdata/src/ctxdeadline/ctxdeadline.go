// Package ctxdeadline seeds deadline-propagation bugs the ctx-deadline pass
// must catch in ctx-strict packages: severing the request context with
// Background/TODO, and building context-free HTTP requests.
//
//genielint:ctx-strict
package ctxdeadline

import (
	"context"
	"net/http"
)

type server struct{}

func (s *server) helper(ctx context.Context) error { return ctx.Err() }

func (s *server) badSever(ctx context.Context) error {
	return s.helper(context.Background()) // want `context.Background severs the request deadline`
}

func (s *server) badTODO(ctx context.Context) error {
	return s.helper(context.TODO()) // want `context.TODO severs the request deadline`
}

func badRequest(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http.NewRequest builds a context.Background`
}

func (s *server) okThreaded(ctx context.Context) error {
	return s.helper(ctx)
}

func (s *server) okDerived(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.helper(ctx)
}

// Parse adapts a ctx-free interface; the root context is declared.
//
//genielint:ctx-root interface adapter: the Decoder contract has no ctx parameter
func (s *server) Parse(words []string) error {
	return s.helper(context.Background())
}
