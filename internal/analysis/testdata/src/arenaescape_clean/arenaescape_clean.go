// Package arenaescapeclean is the clean twin of the arenaescape fixture:
// the same shapes with every arena value kept inside its lease, so the
// arena-escape pass must stay silent.
package arenaescapeclean

//genielint:arena-source
type Arena struct{ slab []float64 }

type Tensor struct{ W []float64 }

func (a *Arena) Get(n int) *Tensor { return &Tensor{W: a.slab[:n]} }
func (a *Arena) Reset()            { a.slab = a.slab[:0] }

//genielint:arena-scoped
type scratch struct{ rows []*Tensor }

func scratchStore(s *scratch, a *Arena) {
	s.rows = append(s.rows, a.Get(1))
}

//genielint:returns-arena
func annotatedReturn(a *Arena) *Tensor {
	return a.Get(8)
}

func localUse(a *Arena) float64 {
	t := a.Get(4)
	sum := 0.0
	for _, v := range t.W {
		sum += v
	}
	a.Reset()
	return sum
}

func copyOut(a *Arena) []float64 {
	t := a.Get(4)
	out := make([]float64, len(t.W))
	copy(out, t.W)
	return out
}
