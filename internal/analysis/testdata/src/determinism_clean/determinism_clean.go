// Package determinismclean is the clean twin of the determinism fixture:
// seeded streams, sorted map keys, and order-insensitive accumulation only.
//
//genielint:deterministic
package determinismclean

import (
	"math/rand"
	"sort"
)

func seededStream(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
