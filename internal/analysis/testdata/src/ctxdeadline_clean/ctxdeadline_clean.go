// Package ctxdeadlineclean is the clean twin of the ctxdeadline fixture:
// every path threads its incoming context, and the one legitimate root is
// annotated.
//
//genielint:ctx-strict
package ctxdeadlineclean

import (
	"context"
	"net/http"
)

type server struct{}

func (s *server) helper(ctx context.Context) error { return ctx.Err() }

func (s *server) threaded(ctx context.Context) error {
	return s.helper(ctx)
}

func (s *server) derived(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.helper(ctx)
}

func request(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

//genielint:ctx-root interface adapter: the Decoder contract has no ctx parameter
func (s *server) Parse(words []string) error {
	return s.helper(context.Background())
}
