// Package guardedfield seeds locking bugs the guarded-field pass must catch:
// guarded fields touched without their mutex, lock scope lost across
// branches and goroutines, and atomic fields mixed with direct access.
package guardedfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) badInc() {
	c.n++ // want `guarded by mu but accessed without c.mu held`
}

func (c *counter) goodInc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `accessed without c.mu held`
}

func (c *counter) badBranchScope(cond bool) {
	if cond {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `accessed without c.mu held`
}

func (c *counter) badGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `accessed without c.mu held`
	}()
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // fresh local before publication: fine
	return c
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (t *table) goodGet(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) goodSet(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

func (t *table) badGet(k string) int {
	return t.m[k] // want `guarded by mu but accessed without t.mu held`
}

type stats struct {
	hits int64
	name string
}

func (s *stats) atomicAdd()        { atomic.AddInt64(&s.hits, 1) }
func (s *stats) atomicRead() int64 { return atomic.LoadInt64(&s.hits) }

func (s *stats) badDirectRead() int64 {
	return s.hits // want `accessed with sync/atomic elsewhere`
}

func (s *stats) okUnrelatedField() string {
	return s.name
}

func (c *counter) okAllowListed() int {
	//genielint:allow guarded-field fixture demonstrating suppression: racy read is intended here
	return c.n
}
