// Package determinism seeds reproducibility bugs the determinism pass must
// catch in annotated packages: wall-clock reads, global rand draws, and map
// iteration feeding ordered output.
//
//genielint:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic package`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in a deterministic package`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `global rand.Intn stream`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle stream`
}

func okSeededStream(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func badMapEmit(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration feeds ordered output`
		out = append(out, k)
	}
	return out
}

func badMapSend(m map[string]int, ch chan<- string) {
	for k := range m { // want `map iteration feeds ordered output`
		ch <- k
	}
}

func okSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func okSliceRange(xs []int, ch chan<- int) {
	for _, v := range xs {
		ch <- v
	}
}
