// Package directivebad seeds malformed //genielint: directives; the driver
// reports them under the pseudo-pass "directive" so a typo can never silently
// disable a check. The unit test asserts on these by count and message, not
// want comments (a want comment cannot share a line with a line directive).
package directivebad

// An unknown directive name.
//
//genielint:bogus
var a = 0

// An allow without a reason: suppressions must be explained.
//
//genielint:allow ctx-deadline
var b = 0

// A ctx-root without a reason.
//
//genielint:ctx-root
func root() {}

var _ = a + b
