// Package arenaescape seeds graph-lease lifetime bugs the arena-escape pass
// must catch: arena-backed values stored into long-lived fields, globals, or
// returned without a returns-arena contract.
package arenaescape

// Arena mimics nn.Arena: values it hands out are valid only until Reset.
//
//genielint:arena-source
type Arena struct{ slab []float64 }

// Tensor mimics nn.Tensor.
type Tensor struct{ W []float64 }

func (a *Arena) Get(n int) *Tensor { return &Tensor{W: a.slab[:n]} }
func (a *Arena) Reset()            { a.slab = a.slab[:0] }

// scratch is lease-bounded by design, like model.decodeCtx.
//
//genielint:arena-scoped
type scratch struct{ rows []*Tensor }

// Model outlives any single graph lease.
type Model struct{ cache *Tensor }

var globalTensor *Tensor

func badFieldStore(m *Model, a *Arena) {
	t := a.Get(4)
	m.cache = t // want `arena-backed value stored in Model.cache`
}

func badGlobalStore(a *Arena) {
	globalTensor = a.Get(2) // want `stored in package-level var globalTensor`
}

func badReturn(a *Arena) *Tensor {
	t := a.Get(8)
	return t // want `arena-backed value returned from badReturn`
}

func badReturnViaAppend(a *Arena, dst []*Tensor) []*Tensor {
	dst = append(dst, a.Get(3))
	return dst // want `arena-backed value returned from badReturnViaAppend`
}

//genielint:returns-arena
func okAnnotatedReturn(a *Arena) *Tensor {
	return a.Get(8)
}

func badTransitiveReturn(a *Arena) *Tensor {
	t := okAnnotatedReturn(a)
	return t // want `arena-backed value returned from badTransitiveReturn`
}

func okScratchStore(s *scratch, a *Arena) {
	s.rows = append(s.rows, a.Get(1))
}

func okLocalUse(a *Arena) float64 {
	t := a.Get(4)
	sum := 0.0
	for _, v := range t.W {
		sum += v
	}
	a.Reset()
	return sum
}

func okReassignClearsTaint(a *Arena) *Tensor {
	t := a.Get(4)
	_ = t
	t = &Tensor{W: make([]float64, 4)}
	return t
}
