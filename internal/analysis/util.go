package analysis

import (
	"go/ast"
	"go/types"
)

// calleeObj resolves a call expression's callee to its declared object
// (function, method, or builtin), or nil for dynamic calls through function
// values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func).
		return info.Uses[fn.Sel]
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the *types.TypeName of a named
// type, or nil for unnamed types.
func namedOf(t types.Type) *types.TypeName {
	for t != nil {
		t = types.Unalias(t)
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
	return nil
}

// recvNamed returns the named type of a method's receiver, or nil for
// package-level functions.
func recvNamed(obj types.Object) *types.TypeName {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// pkgPathOf returns the declaring package path of an object ("" for builtins
// and universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name
// (methods never match: their receiver carries the state that makes per-value
// use legitimate, e.g. a seeded *rand.Rand).
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Name() != name || pkgPathOf(obj) != pkgPath {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// rootIdent unwraps selectors, index expressions, derefs, calls-through, and
// parens down to the base identifier of an lvalue/chain (x in x.f[i].g), or
// nil when the chain does not bottom out in an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.Ident:
			return ee
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.UnaryExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// enclosingFuncs pairs each function body in the package — declarations and
// the function literals nested inside them — with the declared function they
// belong to, so per-function passes can honor declaration-level annotations
// (ctx-root, returns-arena) inside closures too.
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	funcDecls(pkg, func(fd *ast.FuncDecl) {
		fn(fd, fd.Body)
	})
}

// isMutexType reports whether a named type is sync.Mutex or sync.RWMutex.
func isMutexType(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	return pkgPathOf(tn) == "sync" && (tn.Name() == "Mutex" || tn.Name() == "RWMutex")
}
