// Package analysis is genielint's engine: a zero-dependency static-analysis
// driver (stdlib go/parser + go/types, package metadata via `go list`) and
// the five invariant-enforcing passes that guard this repository's contracts:
//
//	arena-escape   — arena/pool-backed nn.Tensor values must not outlive the
//	                 graph lease that produced them
//	pool-retention — sync.Pool-style Get results are Put on every exit path,
//	                 never used after Put, and pooled (shared) values are
//	                 cloned before mutation
//	determinism    — packages annotated deterministic may not read wall
//	                 clocks, the global math/rand stream, or unordered map
//	                 iteration
//	ctx-deadline   — request-path packages must thread their incoming
//	                 context; new root contexts need an annotated reason
//	guarded-field  — fields declared `// guarded by <mu>` are only touched
//	                 under that mutex, and atomic fields are not mixed with
//	                 direct access
//
// The invariants themselves are declared in the code via //genielint:
// directives (see directives.go); the passes only enforce what the
// declarations promise, the same bet Genie Worksheets makes at the dialogue
// level: reliability comes from machine-checked contracts, not convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the pass that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant-enforcing pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context handed to Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Dirs are the package's parsed //genielint: directives and guarded-by
	// annotations (allow suppressions and package-level flags are always
	// package-local).
	Dirs *Directives
	// Prog is the whole analyzed program: object-keyed annotations (pooled,
	// arena-scoped, returns-arena, ...) resolve through it so a directive in
	// internal/nn governs call sites in internal/model.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an allow directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Dirs.allowed(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full pass catalog in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ArenaEscapeAnalyzer,
		PoolRetentionAnalyzer,
		DeterminismAnalyzer,
		CtxDeadlineAnalyzer,
		GuardedFieldAnalyzer,
	}
}

// Program is the cross-package view of an analyzed module: every package's
// directives merged into one object-keyed annotation table. Object identity
// is shared across packages (the loader typechecks each module package once),
// so an annotation in internal/nn is visible at call sites in internal/model.
type Program struct {
	dirs map[*Package]*Directives

	ctxRoot      map[types.Object]bool
	returnsArena map[types.Object]bool
	pooled       map[types.Object]bool
	arenaScoped  map[types.Object]bool
	arenaSource  map[types.Object]bool
	poolType     map[types.Object]bool
	guarded      map[types.Object]string
}

// NewProgram parses every package's directives and merges the object-keyed
// tables.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		dirs:         map[*Package]*Directives{},
		ctxRoot:      map[types.Object]bool{},
		returnsArena: map[types.Object]bool{},
		pooled:       map[types.Object]bool{},
		arenaScoped:  map[types.Object]bool{},
		arenaSource:  map[types.Object]bool{},
		poolType:     map[types.Object]bool{},
		guarded:      map[types.Object]string{},
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			continue
		}
		dirs := parseDirectives(pkg)
		prog.dirs[pkg] = dirs
		for o := range dirs.ctxRoot {
			prog.ctxRoot[o] = true
		}
		for o := range dirs.returnsArena {
			prog.returnsArena[o] = true
		}
		for o := range dirs.pooled {
			prog.pooled[o] = true
		}
		for o := range dirs.arenaScoped {
			prog.arenaScoped[o] = true
		}
		for o := range dirs.arenaSource {
			prog.arenaSource[o] = true
		}
		for o := range dirs.poolType {
			prog.poolType[o] = true
		}
		for o, mu := range dirs.guarded {
			prog.guarded[o] = mu
		}
	}
	return prog
}

// CtxRoot reports whether fn is an annotated context root.
func (p *Program) CtxRoot(obj types.Object) bool { return p.ctxRoot[obj] }

// ReturnsArena reports whether fn is annotated returns-arena.
func (p *Program) ReturnsArena(obj types.Object) bool { return p.returnsArena[obj] }

// Pooled reports whether the named type is annotated pooled.
func (p *Program) Pooled(obj types.Object) bool { return p.pooled[obj] }

// ArenaScoped reports whether the named type is annotated arena-scoped.
func (p *Program) ArenaScoped(obj types.Object) bool { return p.arenaScoped[obj] }

// ArenaSource reports whether the named type is annotated arena-source.
func (p *Program) ArenaSource(obj types.Object) bool { return p.arenaSource[obj] }

// PoolType reports whether the named type is annotated pool (a Get/Put
// container).
func (p *Program) PoolType(obj types.Object) bool { return p.poolType[obj] }

// GuardedBy returns the declared mutex field name for a guarded field object
// ("" when unguarded).
func (p *Program) GuardedBy(obj types.Object) string { return p.guarded[obj] }

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position. Directives are parsed for the whole
// program first, so annotations resolve across package boundaries.
// Malformed directives (an allow without a reason) are reported as
// diagnostics of the pseudo-pass "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := prog.dirs[pkg]
		if dirs == nil {
			continue
		}
		for _, bad := range dirs.malformed {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(bad.pos),
				Analyzer: "directive",
				Message:  bad.msg,
			})
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Dirs: dirs, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags
}

// funcDecls yields every function declaration in the package with a body.
func funcDecls(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
