package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive syntax (all comments, so the contracts live beside the code they
// govern):
//
//	//genielint:deterministic
//	    Package directive (any file, conventionally above the package
//	    clause): the package promises bit-reproducible output; the
//	    determinism pass enforces it.
//
//	//genielint:ctx-strict
//	    Package directive: the package is a request path; every function
//	    must thread its incoming context. context.Background()/TODO() are
//	    only legal in functions annotated ctx-root.
//
//	//genielint:ctx-root <reason>
//	    Function directive: this function legitimately originates a context
//	    (background prober, interface adapter with no ctx in its contract).
//	    The reason is mandatory.
//
//	//genielint:pooled
//	    Type directive: values of this type are shared through pools;
//	    callees receiving them (directly or inside slices/fields) must
//	    Clone before mutating.
//
//	//genielint:arena-scoped
//	    Type directive: this struct's lifetime is bounded by one graph
//	    lease, so storing arena tensors into its fields is part of the
//	    design rather than an escape.
//
//	//genielint:arena-source
//	    Type directive: method calls on this type hand out arena-backed
//	    values (the arena itself, and graphs drawing from one). Results of
//	    its methods carry arena lifetime; the type is implicitly
//	    arena-scoped.
//
//	//genielint:returns-arena
//	    Function directive: the function hands out arena-backed tensors;
//	    its results carry arena lifetime at call sites, and arena values
//	    may flow out through its returns.
//
//	//genielint:pool
//	    Type directive: a Get/Put recycling container (like sync.Pool,
//	    which is recognized without annotation). Get results must be Put
//	    back — or handed off by return/store — and never used after Put.
//
//	//genielint:allow <pass> <reason>
//	    Line directive (on the flagged line or the line above): suppress
//	    one pass's diagnostics here. The reason is mandatory; an allow
//	    without one is itself a diagnostic.
//
//	// guarded by <mu>
//	    Field annotation (trailing or doc comment on a struct field): the
//	    field may only be accessed while <mu> — a sibling mutex field — is
//	    held.
const directivePrefix = "//genielint:"

type allowKey struct {
	file string
	line int
	pass string
}

type malformedDirective struct {
	pos token.Pos
	msg string
}

// Directives is a package's parsed genielint annotations.
type Directives struct {
	pkg *Package

	// Deterministic / CtxStrict are package-level promises.
	Deterministic bool
	CtxStrict     bool

	// ctxRoot maps *types.Func objects annotated ctx-root.
	ctxRoot map[types.Object]bool
	// returnsArena maps *types.Func objects annotated returns-arena.
	returnsArena map[types.Object]bool
	// pooled / arenaScoped / arenaSource / poolType map *types.TypeName
	// objects so passes can test annotations across packages via the type's
	// object identity.
	pooled      map[types.Object]bool
	arenaScoped map[types.Object]bool
	arenaSource map[types.Object]bool
	poolType    map[types.Object]bool
	// guarded maps field objects to the declared mutex field name.
	guarded map[types.Object]string

	allows    map[allowKey]bool
	malformed []malformedDirective
}

// parseDirectives walks a package's comments and declarations once, building
// the annotation tables every pass consults.
func parseDirectives(pkg *Package) *Directives {
	d := &Directives{
		pkg:          pkg,
		ctxRoot:      map[types.Object]bool{},
		returnsArena: map[types.Object]bool{},
		pooled:       map[types.Object]bool{},
		arenaScoped:  map[types.Object]bool{},
		arenaSource:  map[types.Object]bool{},
		poolType:     map[types.Object]bool{},
		guarded:      map[types.Object]string{},
		allows:       map[allowKey]bool{},
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(c)
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				d.parseFuncDirectives(decl)
			case *ast.GenDecl:
				d.parseGenDecl(decl)
			}
		}
	}
	return d
}

// parseComment handles package-level flags and allow lines, which attach to
// positions rather than declarations.
func (d *Directives) parseComment(c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		d.malformed = append(d.malformed, malformedDirective{c.Pos(), "empty genielint directive"})
		return
	}
	switch fields[0] {
	case "deterministic":
		d.Deterministic = true
	case "ctx-strict":
		d.CtxStrict = true
	case "allow":
		if len(fields) < 3 {
			d.malformed = append(d.malformed, malformedDirective{
				c.Pos(), "allow directive needs a pass name and a reason: //genielint:allow <pass> <why>"})
			return
		}
		pos := d.pkg.Fset.Position(c.Pos())
		d.allows[allowKey{pos.Filename, pos.Line, fields[1]}] = true
	case "ctx-root":
		if len(fields) < 2 {
			d.malformed = append(d.malformed, malformedDirective{
				c.Pos(), "ctx-root directive needs a reason: //genielint:ctx-root <why>"})
		}
	case "pooled", "arena-scoped", "arena-source", "pool", "returns-arena":
		// Attached to declarations in parseFuncDirectives/parseGenDecl.
	default:
		d.malformed = append(d.malformed, malformedDirective{
			c.Pos(), "unknown genielint directive " + fields[0]})
	}
}

func commentHas(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			fields := strings.Fields(text)
			if len(fields) > 0 && fields[0] == name {
				return true
			}
		}
	}
	return false
}

func (d *Directives) parseFuncDirectives(fd *ast.FuncDecl) {
	obj := d.pkg.Info.Defs[fd.Name]
	if obj == nil {
		return
	}
	if commentHas(fd.Doc, "ctx-root") {
		d.ctxRoot[obj] = true
	}
	if commentHas(fd.Doc, "returns-arena") {
		d.returnsArena[obj] = true
	}
}

func (d *Directives) parseGenDecl(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		obj := d.pkg.Info.Defs[ts.Name]
		if obj == nil {
			continue
		}
		// A directive on the type spec or (for single-spec decls) the decl.
		if commentHas(ts.Doc, "pooled") || commentHas(gd.Doc, "pooled") {
			d.pooled[obj] = true
		}
		if commentHas(ts.Doc, "arena-scoped") || commentHas(gd.Doc, "arena-scoped") {
			d.arenaScoped[obj] = true
		}
		if commentHas(ts.Doc, "arena-source") || commentHas(gd.Doc, "arena-source") {
			d.arenaSource[obj] = true
			d.arenaScoped[obj] = true // a source owns its values' lifetime
		}
		if commentHas(ts.Doc, "pool") || commentHas(gd.Doc, "pool") {
			d.poolType[obj] = true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			mu := guardedBy(field.Doc)
			if mu == "" {
				mu = guardedBy(field.Comment)
			}
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				if fobj := d.pkg.Info.Defs[name]; fobj != nil {
					d.guarded[fobj] = mu
				}
			}
		}
	}
}

// guardedBy extracts the mutex name from a `// guarded by <mu>` annotation
// anywhere in the comment group.
func guardedBy(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "guarded by "); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				// The annotation may share the comment with prose:
				// `// guarded by mu; stat signal at the last (re)load`.
				return strings.TrimRight(fields[0], ".,;:")
			}
		}
	}
	return ""
}

// allowed reports whether pass diagnostics at file:line are suppressed by an
// allow directive on that line or the one above it.
func (d *Directives) allowed(pass, file string, line int) bool {
	return d.allows[allowKey{file, line, pass}] || d.allows[allowKey{file, line - 1, pass}]
}

// CtxRoot reports whether fn (a declared function/method object) is an
// annotated context root.
func (d *Directives) CtxRoot(obj types.Object) bool { return d.ctxRoot[obj] }

// ReturnsArena reports whether fn is annotated returns-arena.
func (d *Directives) ReturnsArena(obj types.Object) bool { return d.returnsArena[obj] }

// Pooled reports whether the named type's object is annotated pooled in this
// package.
func (d *Directives) Pooled(obj types.Object) bool { return d.pooled[obj] }

// ArenaScoped reports whether the named type's object is annotated
// arena-scoped in this package.
func (d *Directives) ArenaScoped(obj types.Object) bool { return d.arenaScoped[obj] }

// GuardedFields returns the field-object → mutex-name table.
func (d *Directives) GuardedFields() map[types.Object]string { return d.guarded }
