package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches golden-diagnostic comments in fixtures:
//
//	m.cache = t // want `arena-backed value stored`
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type wantEntry struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture loads testdata fixture packages by directory name. Fixtures
// must typecheck cleanly so the passes see full type information.
func loadFixture(t *testing.T, names ...string) []*Package {
	t.Helper()
	patterns := make([]string, len(names))
	for i, n := range names {
		patterns[i] = "./testdata/src/" + n
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", names, err)
	}
	if len(pkgs) != len(names) {
		t.Fatalf("loaded %d packages for %v", len(pkgs), names)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Errorf("%s: load/typecheck: %v", p.ImportPath, e)
		}
	}
	return pkgs
}

// collectWants scans fixture sources for want comments.
func collectWants(t *testing.T, pkgs []*Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern: %v", name, i+1, err)
					}
					wants = append(wants, &wantEntry{file: name, line: i + 1, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs the full pass catalog over one fixture and checks its
// diagnostics against the want comments both ways: no unexpected findings, no
// missed wants.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	pkgs := loadFixture(t, name)
	diags := Run(pkgs, Analyzers())
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

// TestFixtures is the golden suite: each pass must catch every seeded bug in
// its fixture (matching the want comments exactly) and stay silent on the
// clean twin.
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		pass    string
	}{
		{"arenaescape", "arena-escape"},
		{"poolretention", "pool-retention"},
		{"determinism", "determinism"},
		{"ctxdeadline", "ctx-deadline"},
		{"guardedfield", "guarded-field"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			diags := runFixture(t, c.fixture)
			fired := false
			for _, d := range diags {
				if d.Analyzer == c.pass {
					fired = true
					break
				}
			}
			if !fired {
				t.Errorf("pass %s produced no diagnostics on its seeded fixture", c.pass)
			}
		})
		t.Run(c.fixture+"_clean", func(t *testing.T) {
			pkgs := loadFixture(t, c.fixture+"_clean")
			for _, d := range Run(pkgs, Analyzers()) {
				t.Errorf("clean twin diagnostic: %s", d)
			}
		})
	}
}

// TestPooledDerivationBugCaught pins the PR 1 regression specifically: the
// pool-retention pass must flag a semantic function mutating a shared pooled
// derivation (the exact bug class fixed by hand back then).
func TestPooledDerivationBugCaught(t *testing.T) {
	pkgs := loadFixture(t, "poolretention")
	found := false
	for _, d := range Run(pkgs, Analyzers()) {
		if d.Analyzer == "pool-retention" && strings.Contains(d.Message, "mutated in place") {
			found = true
		}
	}
	if !found {
		t.Fatal("pool-retention did not flag the seeded pooled-derivation mutation")
	}
}

// TestMalformedDirectives: a typo in a directive must surface as a finding,
// never silently disable a check.
func TestMalformedDirectives(t *testing.T) {
	pkgs := loadFixture(t, "directivebad")
	diags := Run(pkgs, Analyzers())
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d directive diagnostics %v, want 3", len(msgs), msgs)
	}
	for _, want := range []string{"unknown genielint directive bogus", "allow directive needs", "ctx-root directive needs"} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing directive diagnostic containing %q in %v", want, msgs)
		}
	}
}

// TestRepoIsClean dogfoods the suite: the repository's own packages must lint
// clean (true positives fixed, declared exceptions annotated). This is the
// same gate CI runs via cmd/genielint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow; run without -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
