// Package nltemplate implements the NL-template language of Section 3.1: a
// grammar of construct templates (mapping natural-language compositional
// constructs to ThingTalk operators, with arbitrary semantic functions) and
// the expansion of developer-supplied primitive templates into grammar rules.
//
// A template has the form
//
//	lhs := [literal | vn : rhs]+ -> sf
//
// where sf computes the formal-language value of the derivation and may
// return ⊥ (nil) to reject a combination — this is how type checking such as
// "only monitorable queries can be monitored" is expressed (Section 3.1).
package nltemplate

import (
	"strings"

	"repro/internal/thingtalk"
)

// Category names of the standard ThingTalk grammar.
const (
	CatCommand = "command" // complete programs
	CatNP      = "np"      // query noun phrases
	CatQVP     = "qvp"     // query verb phrases
	CatWP      = "wp"      // stream when-phrases
	CatAVP     = "avp"     // action verb phrases
	CatAVPRef  = "avpref"  // action verb phrases with a parameter-passing hole
	CatNPRef   = "npref"   // query noun phrases with a parameter-passing hole
	CatPred    = "pred"    // boolean predicate phrases
	CatAgg     = "agg"     // aggregation phrases (TT+A)
)

// ConstCategory returns the generator category for typed constants; the
// synthesizer mints a fresh slot derivation each time one is requested.
func ConstCategory(t thingtalk.Type) string { return "const:" + t.String() }

// IsConstCategory reports whether cat is a constant-generator category, and
// returns its type.
func IsConstCategory(cat string) (thingtalk.Type, bool) {
	if !strings.HasPrefix(cat, "const:") {
		return nil, false
	}
	t, err := thingtalk.ParseType(cat[len("const:"):])
	if err != nil {
		return nil, false
	}
	return t, true
}

// Derivation is a partial or complete sentence/value pair produced by the
// grammar.
//
//genielint:pooled
type Derivation struct {
	// Words is the sentence so far; unfilled parameters appear as __slot_N
	// markers replaced later by the parameter-replacement stage.
	Words []string
	// Value is the formal fragment: *thingtalk.Program, *thingtalk.Query,
	// *thingtalk.Stream, *thingtalk.Action, *Pred, *AggSpec, or
	// thingtalk.Value for constants.
	Value any
	// Depth is 1 + the maximum child depth.
	Depth int
}

// Sentence returns the derivation's words joined by spaces.
func (d *Derivation) Sentence() string { return strings.Join(d.Words, " ") }

// Pred is the value of a predicate-phrase derivation: a predicate together
// with the function selector whose outputs it references (so that filter
// constructs only attach it to matching queries).
type Pred struct {
	Selector  string
	Predicate *thingtalk.Predicate
}

// AggSpec is the value of an aggregation-phrase derivation (TT+A).
type AggSpec struct {
	Selector string
	Op       string
	Param    string
}

// Symbol is one element of a rule's right-hand side: either literal words or
// a non-terminal reference.
type Symbol struct {
	Literal string // space-separated literal words
	NonTerm string
}

// Lit returns a literal symbol.
func Lit(words string) Symbol { return Symbol{Literal: words} }

// NT returns a non-terminal symbol.
func NT(cat string) Symbol { return Symbol{NonTerm: cat} }

// SemanticFn computes the value of a derivation from its non-terminal
// children (in RHS order). Returning nil rejects the combination (⊥).
type SemanticFn func(children []*Derivation) any

// Rule is one construct or primitive template.
type Rule struct {
	LHS   string
	RHS   []Symbol
	Apply SemanticFn
	// Flags select rule subsets for different purposes; a rule with no
	// flags is used for every purpose (Section 3.1).
	Flags []string
	// Name is a diagnostic label.
	Name string
}

// HasFlag reports whether the rule carries flag (rules without flags match
// everything).
func (r *Rule) HasFlag(flag string) bool {
	if len(r.Flags) == 0 {
		return true
	}
	for _, f := range r.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// NonTerminals returns the indexes of the non-terminal symbols in the RHS.
func (r *Rule) NonTerminals() []int {
	var out []int
	for i, s := range r.RHS {
		if s.NonTerm != "" {
			out = append(out, i)
		}
	}
	return out
}

// Grammar is a set of rules indexed by left-hand-side category.
type Grammar struct {
	rules map[string][]*Rule
	order []string
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar { return &Grammar{rules: map[string][]*Rule{}} }

// Add registers a rule.
func (g *Grammar) Add(r *Rule) {
	if _, ok := g.rules[r.LHS]; !ok {
		g.order = append(g.order, r.LHS)
	}
	g.rules[r.LHS] = append(g.rules[r.LHS], r)
}

// AddRule is a convenience wrapper building a Rule from parts.
func (g *Grammar) AddRule(name, lhs string, rhs []Symbol, apply SemanticFn, flags ...string) {
	g.Add(&Rule{LHS: lhs, RHS: rhs, Apply: apply, Flags: flags, Name: name})
}

// Rules returns the rules for a category.
func (g *Grammar) Rules(cat string) []*Rule { return g.rules[cat] }

// Categories returns the categories with at least one rule, in registration
// order.
func (g *Grammar) Categories() []string { return g.order }

// RuleCount returns the total number of rules.
func (g *Grammar) RuleCount() int {
	n := 0
	for _, rs := range g.rules {
		n += len(rs)
	}
	return n
}

// Derive applies a rule to children (which must match the rule's
// non-terminal count), returning nil if the semantic function rejects the
// combination.
func Derive(r *Rule, children []*Derivation) *Derivation {
	value := r.Apply(children)
	if value == nil {
		return nil
	}
	var words []string
	depth := 0
	ci := 0
	for _, sym := range r.RHS {
		if sym.NonTerm != "" {
			child := children[ci]
			words = append(words, child.Words...)
			if child.Depth > depth {
				depth = child.Depth
			}
			ci++
			continue
		}
		words = append(words, strings.Fields(sym.Literal)...)
	}
	return &Derivation{Words: words, Value: value, Depth: depth + 1}
}
