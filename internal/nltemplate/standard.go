package nltemplate

import (
	"strings"

	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// Options configure the standard grammar.
type Options struct {
	// Aggregates enables the TT+A extension rules of Section 6.3.
	Aggregates bool
	// GenericFilters enables the generated per-function predicate rules
	// (in addition to filters written directly in primitive templates).
	GenericFilters bool
	// MaxFilterParams caps how many output parameters per function get
	// generated predicate rules (0 means all).
	MaxFilterParams int
}

// DefaultOptions is the configuration used for the main ThingTalk
// experiments.
var DefaultOptions = Options{GenericFilters: true, MaxFilterParams: 4}

// StandardGrammar builds the full synthesis grammar for a skill library: the
// construct templates of the ThingTalk language (Section 3.1) plus the
// expansion of every primitive template. The rule inventory mirrors the
// paper's: constructs for primitive commands, compound commands, timers,
// filters and parameter passing.
func StandardGrammar(lib *thingpedia.Library, opt Options) *Grammar {
	g := NewGrammar()
	AddPrimitiveRules(g, lib)
	AddConstructRules(g, lib)
	if opt.GenericFilters {
		AddFilterRules(g, lib, opt.MaxFilterParams)
	}
	if opt.Aggregates {
		AddAggregateRules(g, lib)
	}
	return g
}

// AddConstructRules installs the hand-written construct templates.
func AddConstructRules(g *Grammar, lib *thingpedia.Library) {
	b := builder{g: g, lib: lib}

	// --- Primitive commands: now => q => notify -------------------------
	for _, prefix := range []string{
		"get", "show me", "list", "find", "search for", "tell me",
		"give me", "display", "what is", "i want to see",
	} {
		p := prefix
		flags := []string(nil)
		if p == "get" {
			flags = []string{"basic"}
		}
		b.rule("cmd:get-np:"+p, CatCommand, []Symbol{Lit(p), NT(CatNP)}, func(c []*Derivation) any {
			return b.queryProgram(thingtalk.Now(), queryOf(c[0]), thingtalk.Notify())
		}, flags...)
	}
	b.rule("cmd:enumerate", CatCommand, []Symbol{Lit("enumerate"), NT(CatNP)}, func(c []*Derivation) any {
		q := queryOf(c[0])
		if q == nil || !b.isList(q) {
			return nil
		}
		return b.program(thingtalk.Now(), q, thingtalk.Notify())
	})

	// --- Query verb phrases as commands ---------------------------------
	for _, wrap := range []struct{ pre, post string }{
		{"", ""}, {"please", ""}, {"", "please"}, {"can you", ""}, {"could you please", ""},
	} {
		w := wrap
		name := "cmd:qvp:" + w.pre + "/" + w.post
		rhs := wrapRHS(w.pre, NT(CatQVP), w.post)
		flags := []string(nil)
		if w.pre == "" && w.post == "" {
			flags = []string{"basic"}
		}
		b.rule(name, CatCommand, rhs, func(c []*Derivation) any {
			return b.queryProgram(thingtalk.Now(), queryOf(c[0]), thingtalk.Notify())
		}, flags...)
	}

	// --- Action commands: now => a ---------------------------------------
	for _, wrap := range []struct{ pre, post string }{
		{"", ""}, {"please", ""}, {"", "please"}, {"i want to", ""},
		{"can you", ""}, {"i need you to", ""},
	} {
		w := wrap
		rhs := wrapRHS(w.pre, NT(CatAVP), w.post)
		flags := []string(nil)
		if w.pre == "" && w.post == "" {
			flags = []string{"basic"}
		}
		b.rule("cmd:avp:"+w.pre+"/"+w.post, CatCommand, rhs, func(c []*Derivation) any {
			return b.program(thingtalk.Now(), nil, actionOf(c[0]))
		}, flags...)
	}

	// --- Monitors as when-phrases ----------------------------------------
	for _, phr := range []struct {
		name string
		rhs  []Symbol
	}{
		{"wp:when-np-changes", []Symbol{Lit("when"), NT(CatNP), Lit("changes")}},
		{"wp:when-new-np", []Symbol{Lit("when there are new"), NT(CatNP)}},
		{"wp:when-np-updates", []Symbol{Lit("when"), NT(CatNP), Lit("is updated")}},
	} {
		b.rule(phr.name, CatWP, phr.rhs, func(c []*Derivation) any {
			q := queryOf(c[0])
			if q == nil || !b.isMonitorable(q) {
				return nil
			}
			return thingtalk.Monitor(q)
		})
	}

	// --- Notification commands: s => notify -------------------------------
	for _, prefix := range []string{"notify me", "alert me", "let me know", "send me a message"} {
		p := prefix
		flags := []string(nil)
		if p == "notify me" {
			flags = []string{"basic"}
		}
		b.rule("cmd:notify:"+p, CatCommand, []Symbol{Lit(p), NT(CatWP)}, func(c []*Derivation) any {
			return b.program(streamOf(c[0]), nil, thingtalk.Notify())
		}, flags...)
		b.rule("cmd:notify-rev:"+p, CatCommand, []Symbol{NT(CatWP), Lit(", " + p)}, func(c []*Derivation) any {
			return b.program(streamOf(c[0]), nil, thingtalk.Notify())
		})
	}

	// --- Monitor + get: s => q => notify ----------------------------------
	b.rule("cmd:wp-get-np", CatCommand, []Symbol{NT(CatWP), Lit(", get"), NT(CatNP)}, func(c []*Derivation) any {
		return b.queryProgram(streamOf(c[0]), queryOf(c[1]), thingtalk.Notify())
	}, "basic")
	b.rule("cmd:wp-show-np", CatCommand, []Symbol{NT(CatWP), Lit(", show me"), NT(CatNP)}, func(c []*Derivation) any {
		return b.queryProgram(streamOf(c[0]), queryOf(c[1]), thingtalk.Notify())
	})
	b.rule("cmd:get-np-wp", CatCommand, []Symbol{Lit("get"), NT(CatNP), NT(CatWP)}, func(c []*Derivation) any {
		return b.queryProgram(streamOf(c[1]), queryOf(c[0]), thingtalk.Notify())
	})

	// --- When-do compound commands: s => a --------------------------------
	// The two common orders of Section 3.1 ("when it rains, remind me ..."
	// and "remind me ... when it rains").
	b.rule("cmd:wp-avp", CatCommand, []Symbol{NT(CatWP), Lit(","), NT(CatAVP)}, func(c []*Derivation) any {
		return b.program(streamOf(c[0]), nil, actionOf(c[1]))
	}, "basic")
	b.rule("cmd:avp-wp", CatCommand, []Symbol{NT(CatAVP), NT(CatWP)}, func(c []*Derivation) any {
		return b.program(streamOf(c[1]), nil, actionOf(c[0]))
	})

	// When-do with parameter passing from the monitored query's outputs.
	// Semantic functions must never mutate their children: derivations are
	// pooled and shared across samples (and, with Workers > 1, across
	// goroutines), so typechecking and ref-hole binding — both of which
	// write into the AST — always operate on clones.
	b.rule("cmd:wp-avpref", CatCommand, []Symbol{NT(CatWP), Lit(","), NT(CatAVPRef)}, func(c []*Derivation) any {
		s := streamOf(c[0])
		a := actionOf(c[1])
		if s == nil || a == nil {
			return nil
		}
		s = s.Clone()
		env, err := thingtalk.TypecheckStream(s, b.lib)
		if err != nil || len(env) == 0 {
			return nil
		}
		if bound := bindActionRef(a.Clone(), env); bound != nil {
			return b.program(s, nil, bound)
		}
		return nil
	}, "basic")
	b.rule("cmd:avpref-wp", CatCommand, []Symbol{NT(CatAVPRef), NT(CatWP)}, func(c []*Derivation) any {
		s := streamOf(c[1])
		a := actionOf(c[0])
		if s == nil || a == nil {
			return nil
		}
		s = s.Clone()
		env, err := thingtalk.TypecheckStream(s, b.lib)
		if err != nil || len(env) == 0 {
			return nil
		}
		if bound := bindActionRef(a.Clone(), env); bound != nil {
			return b.program(s, nil, bound)
		}
		return nil
	})

	// --- Get-do compound commands: now => q => a --------------------------
	for _, conj := range []string{"and then", "and"} {
		cj := conj
		flags := []string(nil)
		if cj == "and then" {
			flags = []string{"basic"}
		}
		b.rule("cmd:get-np-then-avpref:"+cj, CatCommand,
			[]Symbol{Lit("get"), NT(CatNP), Lit(cj), NT(CatAVPRef)}, func(c []*Derivation) any {
				q := queryOf(c[0])
				a := actionOf(c[1])
				if q == nil || a == nil {
					return nil
				}
				q = q.Clone()
				env, err := thingtalk.TypecheckQuery(q, b.lib)
				if err != nil {
					return nil
				}
				if bound := bindActionRef(a.Clone(), env); bound != nil {
					return b.queryProgram(thingtalk.Now(), q, bound)
				}
				return nil
			}, flags...)
	}
	b.rule("cmd:get-np-then-avp", CatCommand,
		[]Symbol{Lit("get"), NT(CatNP), Lit("and then"), NT(CatAVP)}, func(c []*Derivation) any {
			return b.queryProgram(thingtalk.Now(), queryOf(c[0]), actionOf(c[1]))
		})

	// --- Timers -----------------------------------------------------------
	interval := ConstCategory(thingtalk.MeasureType{Unit: "ms"})
	tod := ConstCategory(thingtalk.TimeType{})
	b.rule("cmd:timer-avp", CatCommand, []Symbol{NT(CatAVP), Lit("every"), NT(interval)}, func(c []*Derivation) any {
		iv, ok := c[1].Value.(thingtalk.Value)
		if !ok {
			return nil
		}
		return b.program(thingtalk.Timer(thingtalk.DateValue("now"), iv), nil, actionOf(c[0]))
	}, "basic")
	b.rule("cmd:timer-get", CatCommand, []Symbol{Lit("get"), NT(CatNP), Lit("every"), NT(interval)}, func(c []*Derivation) any {
		iv, ok := c[1].Value.(thingtalk.Value)
		if !ok {
			return nil
		}
		return b.queryProgram(thingtalk.Timer(thingtalk.DateValue("now"), iv), queryOf(c[0]), thingtalk.Notify())
	})
	b.rule("cmd:attimer-avp", CatCommand, []Symbol{Lit("every day at"), NT(tod), Lit(","), NT(CatAVP)}, func(c []*Derivation) any {
		tv, ok := c[0].Value.(thingtalk.Value)
		if !ok {
			return nil
		}
		return b.program(thingtalk.AtTimer(tv), nil, actionOf(c[1]))
	})
	b.rule("cmd:avp-attimer", CatCommand, []Symbol{NT(CatAVP), Lit("every day at"), NT(tod)}, func(c []*Derivation) any {
		tv, ok := c[1].Value.(thingtalk.Value)
		if !ok {
			return nil
		}
		return b.program(thingtalk.AtTimer(tv), nil, actionOf(c[0]))
	})
	b.rule("cmd:attimer-get", CatCommand, []Symbol{Lit("every day at"), NT(tod), Lit(", get"), NT(CatNP)}, func(c []*Derivation) any {
		tv, ok := c[0].Value.(thingtalk.Value)
		if !ok {
			return nil
		}
		return b.queryProgram(thingtalk.AtTimer(tv), queryOf(c[1]), thingtalk.Notify())
	})

	// --- Filters ----------------------------------------------------------
	// np := np having pred (Section 3.1's intermediate-derivation example).
	for _, link := range []string{"", "that are", "having"} {
		lk := link
		rhs := []Symbol{NT(CatNP)}
		if lk != "" {
			rhs = append(rhs, Lit(lk))
		}
		rhs = append(rhs, NT(CatPred))
		b.rule("np:filter:"+lk, CatNP, rhs, func(c []*Derivation) any {
			return b.attachFilter(c[0], c[1])
		})
	}
	// The combined lower-depth template of Section 3.1: "get np having pred
	// and then avp" as a single rule.
	b.rule("cmd:get-filter-then", CatCommand,
		[]Symbol{Lit("get"), NT(CatNP), NT(CatPred), Lit("and then"), NT(CatAVP)}, func(c []*Derivation) any {
			q, ok := b.attachFilter(c[0], c[1]).(*thingtalk.Query)
			if !ok || q == nil {
				return nil
			}
			return b.queryProgram(thingtalk.Now(), q, actionOf(c[2]))
		})
	// wp := when np pred (monitor a filtered query).
	b.rule("wp:when-np-pred", CatWP, []Symbol{Lit("when"), NT(CatNP), NT(CatPred)}, func(c []*Derivation) any {
		q, ok := b.attachFilter(c[0], c[1]).(*thingtalk.Query)
		if !ok || q == nil || !b.isMonitorable(q) {
			return nil
		}
		return thingtalk.Monitor(q)
	})

	// --- Query join via verb-phrase coreference ---------------------------
	// "get <np> and translate it": join with parameter passing.
	b.rule("cmd:get-np-then-npref", CatCommand,
		[]Symbol{Lit("get"), NT(CatNP), Lit("and"), NT(CatNPRef)}, func(c []*Derivation) any {
			prod := queryOf(c[0])
			holder := queryOf(c[1])
			if prod == nil || holder == nil || hasRefHole(prod) {
				return nil
			}
			prod = prod.Clone()
			env, err := thingtalk.TypecheckQuery(prod, b.lib)
			if err != nil {
				return nil
			}
			joined := bindQueryRef(holder.Clone(), prod, env)
			if joined == nil {
				return nil
			}
			return b.queryProgram(thingtalk.Now(), joined, thingtalk.Notify())
		})
}

// wrapRHS builds [pre] sym [post] skipping empty wrappers.
func wrapRHS(pre string, sym Symbol, post string) []Symbol {
	var rhs []Symbol
	if pre != "" {
		rhs = append(rhs, Lit(pre))
	}
	rhs = append(rhs, sym)
	if post != "" {
		rhs = append(rhs, Lit(post))
	}
	return rhs
}

// builder carries the library through rule construction.
type builder struct {
	g   *Grammar
	lib *thingpedia.Library
}

func (b *builder) rule(name, lhs string, rhs []Symbol, apply SemanticFn, flags ...string) {
	// Every construct rule carries the "standard" flag so that restricted
	// synthesis runs (e.g. the Wang-et-al baseline, which uses the "basic"
	// subset) can exclude the richer constructs; primitive templates stay
	// unflagged and participate in every run.
	flags = append(flags, "standard")
	b.g.Add(&Rule{LHS: lhs, RHS: rhs, Apply: apply, Flags: flags, Name: name})
}

// program assembles and validates a complete program; it returns nil (⊥)
// when the combination does not typecheck.
func (b *builder) program(s *thingtalk.Stream, q *thingtalk.Query, a *thingtalk.Action) any {
	if s == nil || a == nil {
		return nil
	}
	prog := &thingtalk.Program{Stream: s.Clone(), Query: q.Clone(), Action: a.Clone()}
	if hasRefHole(prog) {
		return nil
	}
	if err := thingtalk.Typecheck(prog, b.lib); err != nil {
		return nil
	}
	return prog
}

// queryProgram is program but requires a non-nil query clause.
func (b *builder) queryProgram(s *thingtalk.Stream, q *thingtalk.Query, a *thingtalk.Action) any {
	if q == nil {
		return nil
	}
	return b.program(s, q, a)
}

// attachFilter wraps the np's query with the predicate when the predicate's
// function matches the query's right-most invocation.
func (b *builder) attachFilter(np *Derivation, pred *Derivation) any {
	q := queryOf(np)
	p, ok := pred.Value.(*Pred)
	if q == nil || !ok {
		return nil
	}
	if q.Kind == thingtalk.QueryAggregate {
		return nil
	}
	if rightmostSelector(q) != p.Selector {
		return nil
	}
	return thingtalk.Filter(q.Clone(), p.Predicate.Clone())
}

func (b *builder) isMonitorable(q *thingtalk.Query) bool {
	for _, inv := range queryInvocations(q) {
		sch, ok := b.lib.Schema(inv.Class, inv.Function)
		if !ok || !sch.Monitor {
			return false
		}
	}
	return true
}

func (b *builder) isList(q *thingtalk.Query) bool {
	if q.Kind == thingtalk.QueryAggregate {
		return false
	}
	for _, inv := range queryInvocations(q) {
		sch, ok := b.lib.Schema(inv.Class, inv.Function)
		if ok && sch.List {
			return true
		}
	}
	return false
}

// queryOf extracts a query value from a derivation.
func queryOf(d *Derivation) *thingtalk.Query {
	q, _ := d.Value.(*thingtalk.Query)
	return q
}

func streamOf(d *Derivation) *thingtalk.Stream {
	s, _ := d.Value.(*thingtalk.Stream)
	return s
}

func actionOf(d *Derivation) *thingtalk.Action {
	a, _ := d.Value.(*thingtalk.Action)
	return a
}

// rightmostSelector returns the selector of the query's right-most
// invocation (the function a filter attaches to).
func rightmostSelector(q *thingtalk.Query) string {
	invs := queryInvocations(q)
	if len(invs) == 0 {
		return ""
	}
	return invs[len(invs)-1].Selector()
}

func queryInvocations(q *thingtalk.Query) []*thingtalk.Invocation {
	prog := &thingtalk.Program{Stream: thingtalk.Now(), Query: q, Action: thingtalk.Notify()}
	return prog.Invocations()
}

// --- Generated filter rules ---------------------------------------------------

// AddFilterRules generates predicate-phrase rules for every query function's
// output parameters: equality, ordering, string and array containment. These
// provide broad (if clunky) filter coverage beyond the filters written in
// primitive templates, exactly the role of the 68 hand-written filter
// construct templates in the paper.
func AddFilterRules(g *Grammar, lib *thingpedia.Library, maxParams int) {
	for _, f := range lib.Functions() {
		if f.Kind != thingtalk.KindQuery {
			continue
		}
		n := 0
		for _, ps := range f.OutParams() {
			if maxParams > 0 && n >= maxParams {
				break
			}
			n++
			addParamFilters(g, f, ps)
		}
	}
}

func addParamFilters(g *Grammar, f *thingtalk.FunctionSchema, ps thingtalk.ParamSpec) {
	sel := f.Selector()
	noun := strings.ReplaceAll(ps.Name, "_", " ")
	add := func(name, phrase, op string, valueType thingtalk.Type) {
		cc := ConstCategory(valueType)
		g.Add(&Rule{
			LHS:  CatPred,
			RHS:  []Symbol{Lit(phrase), NT(cc)},
			Name: "pred:" + sel + ":" + name,
			Apply: func(c []*Derivation) any {
				v, ok := c[0].Value.(thingtalk.Value)
				if !ok {
					return nil
				}
				return &Pred{Selector: sel, Predicate: thingtalk.Atom(ps.Name, op, v)}
			},
		})
	}
	switch t := ps.Type.(type) {
	case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
		add(ps.Name+":eq", "with "+noun+" equal to", thingtalk.OpEq, ps.Type)
		add(ps.Name+":substr", "with "+noun+" containing", thingtalk.OpSubstr, thingtalk.StringType{})
		add(ps.Name+":starts", "whose "+noun+" starts with", thingtalk.OpStartsWith, thingtalk.StringType{})
	case thingtalk.NumberType:
		add(ps.Name+":gt", "with "+noun+" greater than", thingtalk.OpGt, ps.Type)
		add(ps.Name+":lt", "with "+noun+" less than", thingtalk.OpLt, ps.Type)
		add(ps.Name+":ge", "with "+noun+" at least", thingtalk.OpGe, ps.Type)
	case thingtalk.MeasureType, thingtalk.CurrencyType:
		add(ps.Name+":gt", "with "+noun+" above", thingtalk.OpGt, ps.Type)
		add(ps.Name+":lt", "with "+noun+" below", thingtalk.OpLt, ps.Type)
	case thingtalk.DateType:
		add(ps.Name+":after", "with "+noun+" after", thingtalk.OpGt, ps.Type)
		add(ps.Name+":before", "with "+noun+" before", thingtalk.OpLt, ps.Type)
	case thingtalk.BoolType:
		for _, v := range []bool{true, false} {
			val := thingtalk.BoolValue(v)
			phrase := "with " + noun
			if !v {
				phrase = "without " + noun
			}
			vv := val
			g.Add(&Rule{
				LHS:  CatPred,
				RHS:  []Symbol{Lit(phrase)},
				Name: "pred:" + sel + ":" + ps.Name + ":" + phrase,
				Apply: func(c []*Derivation) any {
					return &Pred{Selector: sel, Predicate: thingtalk.Atom(ps.Name, thingtalk.OpEq, vv)}
				},
			})
		}
	case thingtalk.EnumType:
		for _, member := range t.Values {
			m := member
			g.Add(&Rule{
				LHS:  CatPred,
				RHS:  []Symbol{Lit("with " + noun + " " + strings.ReplaceAll(m, "_", " "))},
				Name: "pred:" + sel + ":" + ps.Name + ":" + m,
				Apply: func(c []*Derivation) any {
					return &Pred{Selector: sel, Predicate: thingtalk.Atom(ps.Name, thingtalk.OpEq, thingtalk.EnumValue(m))}
				},
			})
		}
	case thingtalk.ArrayType:
		if thingtalk.IsStringLike(t.Elem) {
			add(ps.Name+":contains", "with "+noun+" including", thingtalk.OpContains, t.Elem)
		}
	}
}

// --- Aggregation rules (TT+A) -------------------------------------------------

// AddAggregateRules generates the TT+A extension rules of Section 6.3: the
// six construct templates for min/max/sum/avg over numeric outputs and count
// over list queries.
func AddAggregateRules(g *Grammar, lib *thingpedia.Library) {
	// count is function-agnostic.
	for _, phrase := range []string{"the number of", "how many"} {
		ph := phrase
		g.Add(&Rule{
			LHS:  CatNP,
			RHS:  []Symbol{Lit(ph), NT(CatNP)},
			Name: "agg:count:" + ph,
			Apply: func(c []*Derivation) any {
				q := queryOf(c[0])
				if q == nil || q.Kind == thingtalk.QueryAggregate || !isListQuery(q, lib) {
					return nil
				}
				return thingtalk.Aggregate("count", "", q.Clone())
			},
			Flags: []string{"aggregate"},
		})
	}
	ops := []struct{ op, phrase string }{
		{"sum", "the total %s of"},
		{"avg", "the average %s of"},
		{"max", "the highest %s of"},
		{"min", "the lowest %s of"},
	}
	for _, f := range lib.Functions() {
		if f.Kind != thingtalk.KindQuery || !f.List {
			continue
		}
		sel := f.Selector()
		for _, ps := range f.OutParams() {
			if !isNumeric(ps.Type) {
				continue
			}
			noun := strings.ReplaceAll(ps.Name, "_", " ")
			for _, o := range ops {
				op := o.op
				param := ps.Name
				g.Add(&Rule{
					LHS:  CatNP,
					RHS:  []Symbol{Lit(strings.ReplaceAll(o.phrase, "%s", noun)), NT(CatNP)},
					Name: "agg:" + op + ":" + sel + ":" + param,
					Apply: func(c []*Derivation) any {
						q := queryOf(c[0])
						if q == nil || q.Kind == thingtalk.QueryAggregate {
							return nil
						}
						if rightmostSelector(q) != sel {
							return nil
						}
						return thingtalk.Aggregate(op, param, q.Clone())
					},
					Flags: []string{"aggregate"},
				})
			}
		}
	}
}

func isListQuery(q *thingtalk.Query, lib *thingpedia.Library) bool {
	for _, inv := range queryInvocations(q) {
		sch, ok := lib.Schema(inv.Class, inv.Function)
		if ok && sch.List {
			return true
		}
	}
	return false
}

func isNumeric(t thingtalk.Type) bool {
	switch t.(type) {
	case thingtalk.NumberType, thingtalk.MeasureType, thingtalk.CurrencyType:
		return true
	}
	return false
}
