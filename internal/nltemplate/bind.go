package nltemplate

import (
	"sort"

	"repro/internal/thingtalk"
)

// Parameter-passing binding. A ref hole (VSlot named __ref) is bound to an
// output parameter of the producing clause:
//
//  1. an output with the same name and an assignable type (the paper's
//     convention: "we encourage developers to use the same naming
//     conventions so the same parameter names are used for similar
//     purposes");
//  2. otherwise the unique output with exactly the hole's type;
//  3. otherwise the unique output with an assignable string-like type.
//
// If no binding or an ambiguous binding results, the combination is ⊥.

// findRefHole locates the single ref hole in an action, returning its
// parameter name and type, or ok=false when none (or several) exist.
func findActionRef(a *thingtalk.Action) (param string, typ thingtalk.Type, ok bool) {
	count := 0
	walkAction(a, func(v *thingtalk.Value, name string) error {
		if v.Kind == thingtalk.VSlot && v.Name == refMarker {
			count++
			param, typ = name, v.SlotType
		}
		return nil
	})
	return param, typ, count == 1
}

// chooseBinding picks the output parameter a hole binds to, per the priority
// rules above.
func chooseBinding(holeParam string, holeType thingtalk.Type, env map[string]thingtalk.Type) (string, bool) {
	if holeType == nil {
		return "", false
	}
	if t, ok := env[holeParam]; ok && bindAssignable(t, holeType) {
		return holeParam, true
	}
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	var exact, loose []string
	for _, n := range names {
		t := env[n]
		if t.Equal(holeType) {
			exact = append(exact, n)
		} else if bindAssignable(t, holeType) {
			loose = append(loose, n)
		}
	}
	if len(exact) == 1 {
		return exact[0], true
	}
	if len(exact) == 0 && len(loose) == 1 {
		return loose[0], true
	}
	return "", false
}

func bindAssignable(src, dst thingtalk.Type) bool {
	if src.Equal(dst) {
		return true
	}
	return thingtalk.IsStringLike(src) && thingtalk.IsStringLike(dst)
}

// bindActionRef rewrites the cloned action's ref hole into a VVarRef bound
// against env; returns nil on binding failure.
func bindActionRef(a *thingtalk.Action, env map[string]thingtalk.Type) *thingtalk.Action {
	param, typ, ok := findActionRef(a)
	if !ok {
		return nil
	}
	out, ok := chooseBinding(param, typ, env)
	if !ok {
		return nil
	}
	walkAction(a, func(v *thingtalk.Value, name string) error {
		if v.Kind == thingtalk.VSlot && v.Name == refMarker {
			*v = thingtalk.VarRefValue(out)
		}
		return nil
	})
	return a
}

// bindQueryRef converts a cloned query-with-hole into a join: the hole's
// input parameter is removed from its invocation and passed through the
// join's "on" clause from the producing query's matching output.
//
//	now => producer join holder on holeParam = out => ...
func bindQueryRef(holder *thingtalk.Query, producer *thingtalk.Query, env map[string]thingtalk.Type) *thingtalk.Query {
	// Locate the hole.
	holeParam, holeType := "", thingtalk.Type(nil)
	count := 0
	walkQuery(holder, func(v *thingtalk.Value, name string) error {
		if v.Kind == thingtalk.VSlot && v.Name == refMarker {
			count++
			holeParam, holeType = name, v.SlotType
		}
		return nil
	})
	if count != 1 {
		return nil
	}
	out, ok := chooseBinding(holeParam, holeType, env)
	if !ok {
		return nil
	}
	if !removeInputParam(holder, holeParam) {
		return nil
	}
	return thingtalk.Join(producer, holder, thingtalk.In(holeParam, thingtalk.VarRefValue(out)))
}

// removeInputParam deletes the in-parameter carrying the ref hole from the
// query's invocation; it reports whether exactly one was removed.
func removeInputParam(q *thingtalk.Query, param string) bool {
	switch q.Kind {
	case thingtalk.QueryInvocation:
		for i := range q.Invocation.In {
			ip := q.Invocation.In[i]
			if ip.Name == param && ip.Value.Kind == thingtalk.VSlot && ip.Value.Name == refMarker {
				q.Invocation.In = append(q.Invocation.In[:i], q.Invocation.In[i+1:]...)
				return true
			}
		}
		return false
	case thingtalk.QueryFilter, thingtalk.QueryAggregate:
		return removeInputParam(q.Inner, param)
	case thingtalk.QueryJoin:
		return removeInputParam(q.Right, param) || removeInputParam(q.Inner, param)
	}
	return false
}

// hasRefHole reports whether the fragment still contains an unbound hole
// (such fragments must not escape into final programs).
func hasRefHole(value any) bool {
	found := false
	check := func(v *thingtalk.Value, _ string) error {
		if v.Kind == thingtalk.VSlot && v.Name == refMarker {
			found = true
		}
		return nil
	}
	switch x := value.(type) {
	case *thingtalk.Query:
		walkQuery(x, check)
	case *thingtalk.Stream:
		walkStream(x, check)
	case *thingtalk.Action:
		walkAction(x, check)
	case *thingtalk.Program:
		if x.Stream != nil {
			walkStream(x.Stream, check)
		}
		if x.Query != nil {
			walkQuery(x.Query, check)
		}
		walkAction(x.Action, check)
	}
	return found
}
