package nltemplate

import (
	"testing"

	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func TestStandardGrammarShape(t *testing.T) {
	lib := thingpedia.Builtin()
	g := StandardGrammar(lib, DefaultOptions)
	if g.RuleCount() < 400 {
		t.Errorf("grammar too small: %d rules", g.RuleCount())
	}
	for _, cat := range []string{CatCommand, CatNP, CatWP, CatAVP, CatPred, CatAVPRef} {
		if len(g.Rules(cat)) == 0 {
			t.Errorf("category %s has no rules", cat)
		}
	}
	// Aggregates only when enabled.
	opts := DefaultOptions
	opts.Aggregates = true
	g2 := StandardGrammar(lib, opts)
	if g2.RuleCount() <= g.RuleCount() {
		t.Error("aggregate rules missing")
	}
}

func TestConstCategory(t *testing.T) {
	cat := ConstCategory(thingtalk.MeasureType{Unit: "byte"})
	typ, ok := IsConstCategory(cat)
	if !ok || !typ.Equal(thingtalk.MeasureType{Unit: "byte"}) {
		t.Errorf("const category round trip failed: %s", cat)
	}
	if _, ok := IsConstCategory("np"); ok {
		t.Error("np is not a const category")
	}
}

func TestDeriveRejects(t *testing.T) {
	r := &Rule{
		LHS:   "x",
		RHS:   []Symbol{Lit("hello"), NT("y")},
		Apply: func(c []*Derivation) any { return nil },
	}
	child := &Derivation{Words: []string{"w"}, Depth: 1}
	if Derive(r, []*Derivation{child}) != nil {
		t.Error("⊥ semantic function should reject the derivation")
	}
	r.Apply = func(c []*Derivation) any { return thingtalk.Now() }
	d := Derive(r, []*Derivation{child})
	if d == nil || d.Sentence() != "hello w" || d.Depth != 2 {
		t.Errorf("derivation wrong: %+v", d)
	}
}

func TestRuleFlags(t *testing.T) {
	r := &Rule{Flags: []string{"basic"}}
	if !r.HasFlag("basic") || r.HasFlag("other") {
		t.Error("flag matching wrong")
	}
	unflagged := &Rule{}
	if !unflagged.HasFlag("anything") {
		t.Error("unflagged rules match everything")
	}
}
