package nltemplate

import (
	"strings"

	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// refMarker is the slot name marking a parameter-passing hole; construct
// templates bind it to an output parameter of the other clause.
const refMarker = "__ref"

// AddPrimitiveRules expands every primitive template of the library into
// grammar rules. Placeholders become typed constant non-terminals; for
// string-like placeholders, additional variants are generated for parameter
// passing:
//
//   - action/query verb phrases get "ref" variants where the placeholder is
//     spoken as a coreference ("post it on facebook", "translate it") and
//     the code carries a hole bound by a construct template — this is how
//     Fig. 1's "get a cat picture and post it on facebook" is synthesized;
//   - query phrases additionally get positional join variants where the
//     placeholder position is filled by another query noun phrase ("the
//     translation of <nyt headlines>"), compiling to a join with parameter
//     passing.
func AddPrimitiveRules(g *Grammar, lib *thingpedia.Library) {
	for _, p := range lib.Primitives("") {
		addPrimitive(g, p, lib)
	}
}

func addPrimitive(g *Grammar, p *thingpedia.Primitive, lib *thingpedia.Library) {
	lhs := map[thingpedia.PrimitiveCategory]string{
		thingpedia.CatNP:  CatNP,
		thingpedia.CatQVP: CatQVP,
		thingpedia.CatWP:  CatWP,
		thingpedia.CatAVP: CatAVP,
	}[p.Category]

	rhs, order := primitiveRHS(p, "", nil)
	g.Add(&Rule{
		LHS:   lhs,
		RHS:   rhs,
		Apply: primitiveApply(p, order, ""),
		Flags: p.Flags,
		Name:  "prim:" + strings.Join(p.Utterance, " "),
	})

	for _, arg := range p.Args {
		if !thingtalk.IsStringLike(arg.Type) {
			continue
		}
		switch p.Category {
		case thingpedia.CatAVP, thingpedia.CatQVP:
			// Coreference variants: "post it on facebook".
			refLHS := CatAVPRef
			if p.Category == thingpedia.CatQVP {
				refLHS = CatNPRef
			}
			for _, phrase := range refPhrases(p, arg.Name) {
				rhs, order := primitiveRHS(p, arg.Name, strings.Fields(phrase))
				g.Add(&Rule{
					LHS:   refLHS,
					RHS:   rhs,
					Apply: primitiveApply(p, order, arg.Name),
					Flags: p.Flags,
					Name:  "primref:" + strings.Join(p.Utterance, " ") + ":" + arg.Name,
				})
			}
		}
		if p.Category == thingpedia.CatNP || p.Category == thingpedia.CatQVP {
			// Positional join variant: the placeholder position is another
			// noun phrase.
			rhs, order := primitiveRHS(p, arg.Name, nil)
			g.Add(&Rule{
				LHS:   lhs,
				RHS:   rhs,
				Apply: primitiveJoinApply(p, order, arg.Name, lib),
				Flags: p.Flags,
				Name:  "primjoin:" + strings.Join(p.Utterance, " ") + ":" + arg.Name,
			})
		}
	}
}

// primitiveRHS converts the utterance into rule symbols. refArg, when
// non-empty, is the placeholder receiving special treatment: spoken as
// refPhrase when non-nil, or as an np non-terminal when refPhrase is nil.
// The returned order lists placeholder names in non-terminal position order
// (with refArg included when it maps to a non-terminal).
func primitiveRHS(p *thingpedia.Primitive, refArg string, refPhrase []string) ([]Symbol, []string) {
	var rhs []Symbol
	var order []string
	pendingLit := []string{}
	flush := func() {
		if len(pendingLit) > 0 {
			rhs = append(rhs, Lit(strings.Join(pendingLit, " ")))
			pendingLit = pendingLit[:0]
		}
	}
	for _, tok := range p.Utterance {
		if len(tok) > 1 && tok[0] == '$' {
			name := tok[1:]
			if name == refArg {
				if refPhrase != nil {
					pendingLit = append(pendingLit, refPhrase...)
					continue
				}
				flush()
				rhs = append(rhs, NT(CatNP))
				order = append(order, name)
				continue
			}
			arg, _ := p.Arg(name)
			flush()
			rhs = append(rhs, NT(ConstCategory(arg.Type)))
			order = append(order, name)
			continue
		}
		pendingLit = append(pendingLit, tok)
	}
	flush()
	return rhs, order
}

// primitiveJoinApply builds the semantic function of a positional join
// variant: the refArg child is a producer query; the template's fragment
// becomes the right side of a join with the hole passed through "on".
func primitiveJoinApply(p *thingpedia.Primitive, order []string, refArg string, lib *thingpedia.Library) SemanticFn {
	return func(children []*Derivation) any {
		var producer *thingtalk.Query
		ids := map[string]int{}
		for i, name := range order {
			if name == refArg {
				q, ok := children[i].Value.(*thingtalk.Query)
				if !ok {
					return nil
				}
				producer = q
				continue
			}
			v, ok := children[i].Value.(thingtalk.Value)
			if !ok || v.Kind != thingtalk.VSlot {
				return nil
			}
			ids[name] = v.SlotID
		}
		if producer == nil || hasRefHole(producer) {
			return nil
		}
		holder := p.Query.Clone()
		walkQuery(holder, func(v *thingtalk.Value, _ string) error {
			if v.Kind != thingtalk.VSlot || v.Name == "" {
				return nil
			}
			if v.Name == refArg {
				v.Name = refMarker
				return nil
			}
			if id, ok := ids[v.Name]; ok {
				v.SlotID = id
				v.Name = ""
			}
			return nil
		})
		prod := producer.Clone()
		env, err := thingtalk.TypecheckQuery(prod, lib)
		if err != nil {
			return nil
		}
		joined := bindQueryRef(holder, prod, env)
		if joined == nil {
			return nil
		}
		return joined
	}
}

// primitiveApply clones the template's code fragment and fills its slots:
// placeholders listed in order receive the children's slot IDs; refArg (if
// any) becomes a parameter-passing hole.
func primitiveApply(p *thingpedia.Primitive, order []string, refArg string) SemanticFn {
	return func(children []*Derivation) any {
		ids := map[string]int{}
		for i, name := range order {
			v, ok := children[i].Value.(thingtalk.Value)
			if !ok || v.Kind != thingtalk.VSlot {
				return nil
			}
			ids[name] = v.SlotID
		}
		fill := func(v *thingtalk.Value, _ string) error {
			if v.Kind != thingtalk.VSlot || v.Name == "" {
				return nil
			}
			if v.Name == refArg {
				v.Name = refMarker
				return nil
			}
			if id, ok := ids[v.Name]; ok {
				v.SlotID = id
				v.Name = ""
			}
			return nil
		}
		switch {
		case p.Query != nil:
			q := p.Query.Clone()
			walkQuery(q, fill)
			return q
		case p.Stream != nil:
			s := p.Stream.Clone()
			walkStream(s, fill)
			return s
		case p.Action != nil:
			a := p.Action.Clone()
			walkAction(a, fill)
			return a
		}
		return nil
	}
}

// refPhrases returns the coreference phrases used to speak a placeholder
// that receives parameter passing.
func refPhrases(p *thingpedia.Primitive, argName string) []string {
	noun := refNoun(p, argName)
	if noun == "" {
		return []string{"it"}
	}
	return []string{"it", "the " + noun}
}

// refNoun derives a noun for the hole from the parameter the placeholder
// fills (picture_url -> picture, tweet_id -> tweet, message -> message).
func refNoun(p *thingpedia.Primitive, argName string) string {
	param := ""
	find := func(v *thingtalk.Value, slotParam string) error {
		if v.Kind == thingtalk.VSlot && v.Name == argName {
			param = v.SlotParam
		}
		return nil
	}
	switch {
	case p.Query != nil:
		walkQuery(p.Query, find)
	case p.Stream != nil:
		walkStream(p.Stream, find)
	case p.Action != nil:
		walkAction(p.Action, find)
	}
	if param == "" {
		return ""
	}
	words := strings.Split(param, "_")
	// Trim suffixes that are not nouns users would say.
	for len(words) > 1 {
		switch words[len(words)-1] {
		case "url", "id", "name", "text":
			words = words[:len(words)-1]
			continue
		}
		break
	}
	return strings.Join(words, " ")
}

// --- shared AST walkers (mutating) -------------------------------------------

func walkQuery(q *thingtalk.Query, f func(*thingtalk.Value, string) error) {
	if q == nil {
		return
	}
	switch q.Kind {
	case thingtalk.QueryInvocation:
		walkInvocation(q.Invocation, f)
	case thingtalk.QueryFilter:
		walkQuery(q.Inner, f)
		walkPredicate(q.Predicate, f)
	case thingtalk.QueryJoin:
		walkQuery(q.Inner, f)
		walkQuery(q.Right, f)
		for i := range q.JoinParams {
			f(&q.JoinParams[i].Value, q.JoinParams[i].Name)
		}
	case thingtalk.QueryAggregate:
		walkQuery(q.Inner, f)
	}
}

func walkStream(s *thingtalk.Stream, f func(*thingtalk.Value, string) error) {
	if s == nil {
		return
	}
	switch s.Kind {
	case thingtalk.StreamTimer:
		f(&s.Base, "base")
		f(&s.Interval, "interval")
	case thingtalk.StreamAtTimer:
		f(&s.Time, "time")
	case thingtalk.StreamMonitor:
		walkQuery(s.Monitor, f)
	case thingtalk.StreamEdge:
		walkStream(s.Inner, f)
		walkPredicate(s.Predicate, f)
	}
}

func walkAction(a *thingtalk.Action, f func(*thingtalk.Value, string) error) {
	if a == nil || a.Invocation == nil {
		return
	}
	walkInvocation(a.Invocation, f)
}

func walkInvocation(inv *thingtalk.Invocation, f func(*thingtalk.Value, string) error) {
	for i := range inv.In {
		f(&inv.In[i].Value, inv.In[i].Name)
	}
}

func walkPredicate(p *thingtalk.Predicate, f func(*thingtalk.Value, string) error) {
	if p == nil {
		return
	}
	switch p.Kind {
	case thingtalk.PredAtom:
		f(&p.Value, p.Param)
	case thingtalk.PredNot, thingtalk.PredAnd, thingtalk.PredOr:
		for _, ch := range p.Children {
			walkPredicate(ch, f)
		}
	case thingtalk.PredExternal:
		walkInvocation(p.External, f)
		walkPredicate(p.InnerPred, f)
	}
}
