// Package gateway is the fault-tolerant routing tier in front of N fleet
// processes (internal/fleet): the layer that takes Genie from one
// multi-skill process per box to a horizontally scaled fleet that survives
// backend failure. It consistent-hash-routes POST /parse by skill across
// the membership with R-way replication, picks the least-loaded ready
// replica using the fleet's own /metrics queue-depth signal, and maintains
// health-checked membership: periodic /healthz + /skills + /metrics probes,
// consecutive-failure ejection, and half-open circuit-breaker readmission.
//
// The resilience contract per request: a deadline budget (propagated via
// serve.DeadlineHeader and honored down at each backend's Batcher, which
// answers 408 before wasting a decode), shed-aware retry across replicas
// (honoring Retry-After, capped exponential backoff with deterministic
// seedable jitter, bounded by the retry budget and the deadline), optional
// hedged requests to a second replica after a p99-derived delay, and
// graceful degradation — a skill with no live replica answers 503 and shows
// as "degraded" on the gateway's /skills, falling back across skills only
// when explicitly enabled. Parsing is a pure function of the snapshot, so
// retrying and hedging POST /parse is safe.
//
// Layering: internal/serve owns one parser's serving mechanics and the wire
// types, internal/fleet owns one process's many-parser control plane, and
// this package owns the many-process concerns — membership, health, routing
// policy. It speaks only HTTP to its backends; internal/faultinject proves
// the contract by injecting faults on that boundary.
//
//genielint:ctx-strict
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Options tune the gateway tier.
type Options struct {
	// Replication is how many distinct backends serve each skill (default 2,
	// capped by the membership size).
	Replication int
	// VirtualNodes is the ring points per backend (default 64).
	VirtualNodes int
	// ProbeInterval is the health-check period (default 500ms); ProbeTimeout
	// bounds one probe's round trips (default ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is the consecutive-failure count that ejects a backend
	// (default 3).
	FailThreshold int
	// RetryBudget is how many additional attempts may follow a failed first
	// one (default 2).
	RetryBudget int
	// BaseBackoff/MaxBackoff shape the capped exponential retry backoff
	// (defaults 5ms/200ms) before jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Hedge arms hedged requests: if the primary attempt is still in flight
	// after the hedge delay, a second replica gets the same request and the
	// first success wins. HedgeAfter fixes the delay; 0 derives it from the
	// primary's probed p99 (2×p99, clamped to [1ms, 500ms], 50ms when no
	// signal yet).
	Hedge      bool
	HedgeAfter time.Duration
	// CrossSkillFallback routes a request whose skill has no live replica to
	// any healthy backend with the skill field cleared, letting that fleet's
	// scored fallback answer with its best other skill. Off by default:
	// degraded skills answer 503.
	CrossSkillFallback bool
	// Seed seeds the retry-jitter RNG (0 uses 1), so tests can fix the
	// backoff schedule.
	Seed int64
	// Transport overrides the backend HTTP transport (nil uses the default).
	Transport http.RoundTripper
	// Logf receives control-plane events (nil discards them).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	} else if o.RetryBudget == 0 {
		o.RetryBudget = 2
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 5 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// StatusDegraded is the gateway /skills status for a skill with no live
// replica.
const StatusDegraded = "degraded"

// Gateway is the routing tier. Membership is dynamic (AddBackend /
// RemoveBackend rebuild the ring; health changes do not), and the probe
// loop runs until Close.
type Gateway struct {
	opt   Options
	hc    *http.Client
	start time.Time

	mu       sync.Mutex // guards membership (backends map + ring rebuild)
	backends map[string]*backend
	ring     atomic.Pointer[ring]

	rngMu sync.Mutex
	rng   *rand.Rand

	lat       serve.LatencyRing
	requests  atomic.Int64 // client-facing /parse requests
	retries   atomic.Int64 // additional attempts spent
	hedges    atomic.Int64 // hedge attempts launched
	hedgeWins atomic.Int64 // hedges that answered first
	fallbacks atomic.Int64 // cross-skill fallbacks taken
	degraded  atomic.Int64 // requests that found no live replica
	sticky    atomic.Int64 // session-affine requests (X-Genie-Session routing)

	mux      *http.ServeMux
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// lifeCtx is the gateway's lifetime context: probes derive their
	// per-attempt timeouts from it, so Close cancels in-flight probes
	// instead of abandoning them to their own timers.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
}

// New assembles a gateway over the initial backend list, probes every
// backend once synchronously (so routing has a health and skill picture
// before the first request), and starts the probe loop.
//
//genielint:ctx-root process-lifetime root: the probe loop outlives any request; Close cancels it
func New(backendAddrs []string, opt Options) *Gateway {
	opt = opt.withDefaults()
	g := &Gateway{
		opt:      opt,
		hc:       &http.Client{Transport: opt.Transport},
		start:    time.Now(),
		backends: map[string]*backend{},
		rng:      rand.New(rand.NewSource(opt.Seed)),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
	}
	g.lifeCtx, g.lifeCancel = context.WithCancel(context.Background())
	for _, a := range backendAddrs {
		addr := strings.TrimRight(strings.TrimSpace(a), "/")
		if addr == "" {
			continue
		}
		g.backends[addr] = newBackend(addr)
	}
	g.rebuildRing()
	g.ProbeOnce()
	g.mux.HandleFunc("/parse", g.handleParse)
	g.mux.HandleFunc("/skills", g.handleSkills)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/healthz", g.handleHealth)
	g.wg.Add(1)
	go g.probeLoop()
	return g
}

// Handler returns the HTTP handler (for http.Server or httptest).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Close stops the probe loop and cancels in-flight probes.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() {
		close(g.stop)
		g.lifeCancel()
	})
	g.wg.Wait()
}

// AddBackend joins a backend to the membership and probes it synchronously,
// so it can take traffic as soon as the call returns. Re-adding an existing
// address is a no-op.
func (g *Gateway) AddBackend(addr string) {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return
	}
	g.mu.Lock()
	if _, ok := g.backends[addr]; ok {
		g.mu.Unlock()
		return
	}
	b := newBackend(addr)
	g.backends[addr] = b
	g.rebuildRing()
	g.mu.Unlock()
	g.opt.Logf("gateway: %s: joined membership", addr)
	g.probe(b)
}

// RemoveBackend leaves a backend from the membership; in-flight requests to
// it complete, new requests hash around it.
func (g *Gateway) RemoveBackend(addr string) {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	g.mu.Lock()
	if _, ok := g.backends[addr]; ok {
		delete(g.backends, addr)
		g.rebuildRing()
		g.opt.Logf("gateway: %s: left membership", addr)
	}
	g.mu.Unlock()
}

// rebuildRing recomputes the consistent-hash ring from the current
// membership. Callers hold g.mu (New is single-threaded).
func (g *Gateway) rebuildRing() {
	list := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		list = append(list, b)
	}
	g.ring.Store(buildRing(list, g.opt.VirtualNodes))
}

// backendList snapshots the membership.
func (g *Gateway) backendList() []*backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, b)
	}
	return out
}

func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.opt.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.ProbeOnce()
		}
	}
}

// ProbeOnce probes every backend once, in parallel, applying the health
// state machine. Exported so tests can step health deterministically.
func (g *Gateway) ProbeOnce() {
	var wg sync.WaitGroup
	for _, b := range g.backendList() {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe is one backend's health check: /healthz must answer OK, and /skills
// + /metrics must parse (they are the routing signal — a backend the
// gateway cannot see skills for cannot take skill traffic). Any failure
// counts toward ejection.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(g.lifeCtx, g.opt.ProbeTimeout)
	defer cancel()
	var h serve.HealthResponse
	var sk serve.SkillsResponse
	var m serve.MetricsResponse
	if err := g.getJSON(ctx, b, "/healthz", &h); err != nil || !h.OK {
		b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
		return
	}
	if err := g.getJSON(ctx, b, "/skills", &sk); err != nil {
		b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
		return
	}
	if err := g.getJSON(ctx, b, "/metrics", &m); err != nil {
		b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
		return
	}
	skills := make(map[string]string, len(sk.Skills))
	for _, s := range sk.Skills {
		skills[s.Name] = s.Status
	}
	depth := make(map[string]int64, len(m.Skills))
	p99 := make(map[string]float64, len(m.Skills))
	for _, s := range m.Skills {
		depth[s.Name] = s.QueueDepth
		p99[s.Name] = s.P99MS
	}
	b.updateProbe(skills, depth, p99)
	b.recordSuccess(g.opt.Logf)
}

func (g *Gateway) getJSON(ctx context.Context, b *backend, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway: %s%s: %s", b.addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// jitter scales a backoff by a deterministic uniform [0.5, 1.5).
func (g *Gateway) jitter(d time.Duration) time.Duration {
	g.rngMu.Lock()
	f := 0.5 + g.rng.Float64()
	g.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}
