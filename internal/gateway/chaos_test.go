package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// TestGatewayChaosKillRestoreZeroFailures is the acceptance scenario: three
// replicas behind fault-injection proxies, retry budget 2, one replica
// killed mid-load (connection drops) and later restored. The skill keeps two
// live replicas throughout, so the client must see zero failures, and the
// killed replica must be readmitted within two probe intervals of
// restoration.
func TestGatewayChaosKillRestoreZeroFailures(t *testing.T) {
	backends := make([]*fakeBackend, 3)
	proxies := make([]*faultinject.Server, 3)
	addrs := make([]string, 3)
	for i := range backends {
		backends[i] = newFakeBackend(t, fmt.Sprintf("replica-%d", i), "alpha")
		p, err := faultinject.NewServer(backends[i].ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		proxies[i] = p
		addrs[i] = p.URL()
	}

	opt := testOptions()
	opt.Replication = 3
	opt.RetryBudget = 2
	opt.FailThreshold = 3
	g := New(addrs, opt)
	defer g.Close()

	var failures atomic.Int64
	var successes atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptestRequest(t, g, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}})
				if req == http.StatusOK {
					successes.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}()
	}

	// Let traffic flow, then kill the replica currently taking the traffic
	// (the router's preferred candidate), so the drop actually costs retries.
	time.Sleep(50 * time.Millisecond)
	victimAddr := g.candidates("alpha")[0].addr
	victim := 0
	for i, a := range addrs {
		if a == victimAddr {
			victim = i
		}
	}
	proxies[victim].SetFault(faultinject.Fault{Mode: faultinject.Drop})
	// Traffic failures plus probes eject it; keep load running meanwhile.
	for i := 0; i < opt.FailThreshold; i++ {
		g.ProbeOnce()
	}
	if st, _ := g.BackendState(victimAddr); st != Ejected {
		t.Errorf("killed replica state = %v, want Ejected", st)
	}
	time.Sleep(50 * time.Millisecond)

	// Restore and assert readmission within two probe intervals.
	proxies[victim].SetFault(faultinject.Fault{Mode: faultinject.Pass})
	g.ProbeOnce()
	g.ProbeOnce()
	if st, _ := g.BackendState(victimAddr); st != Healthy {
		t.Errorf("restored replica state after 2 probes = %v, want Healthy", st)
	}
	time.Sleep(50 * time.Millisecond)

	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Errorf("client-visible failures = %d, want 0 (retry budget must absorb the kill)", f)
	}
	if s := successes.Load(); s == 0 {
		t.Fatal("no load was driven")
	}
	if m := g.MetricsSnapshot(); m.Retries == 0 {
		t.Errorf("Metrics.Retries = 0, expected the kill to cost retries")
	}
}

// httptestRequest drives one POST /parse through the gateway's handler
// in-process and returns the status code.
func httptestRequest(t *testing.T, g *Gateway, req serve.ParseRequest) int {
	return httptestSessionRequest(t, g, req, "")
}

// httptestSessionRequest is httptestRequest with an X-Genie-Session header.
func httptestSessionRequest(t *testing.T, g *Gateway, req serve.ParseRequest, session string) int {
	t.Helper()
	body, _ := json.Marshal(req)
	r, err := http.NewRequest(http.MethodPost, "/parse", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("Content-Type", "application/json")
	if session != "" {
		r.Header.Set(serve.SessionHeader, session)
	}
	w := &statusRecorder{header: http.Header{}}
	g.Handler().ServeHTTP(w, r)
	return w.status
}

// statusRecorder is a minimal ResponseWriter; httptest.NewRecorder would
// work too but this keeps the hot loop allocation-light.
type statusRecorder struct {
	header http.Header
	status int
}

func (w *statusRecorder) Header() http.Header { return w.header }
func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}
func (w *statusRecorder) WriteHeader(code int) { w.status = code }

// TestGatewayStickySessionSurvivesEjectionReadmission is the session tier's
// gateway chaos test: requests carrying one X-Genie-Session must all land on
// the session's rendezvous-choice replica even when least-loaded routing
// would pick another; when that replica is ejected they fail over together
// to one stable second choice with zero client-visible failures, and they
// return to the original replica as soon as it is readmitted. Runs under
// -race in CI.
func TestGatewayStickySessionSurvivesEjectionReadmission(t *testing.T) {
	backends := make([]*fakeBackend, 3)
	proxies := make([]*faultinject.Server, 3)
	addrs := make([]string, 3)
	byAddr := map[string]*fakeBackend{}
	for i := range backends {
		backends[i] = newFakeBackend(t, fmt.Sprintf("replica-%d", i), "alpha")
		p, err := faultinject.NewServer(backends[i].ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		proxies[i] = p
		addrs[i] = p.URL()
		byAddr[p.URL()] = backends[i]
	}

	opt := testOptions()
	opt.Replication = 3
	opt.RetryBudget = 2
	opt.FailThreshold = 3
	g := New(addrs, opt)
	defer g.Close()

	const session = "sess-sticky-chaos"
	// The session's deterministic preference chain, mirroring stickyOrder.
	rank := append([]string(nil), addrs...)
	sort.Slice(rank, func(i, j int) bool {
		return hashKey(session+"@"+rank[i]) > hashKey(session+"@"+rank[j])
	})
	first, second := rank[0], rank[1]
	victim := 0
	for i, a := range addrs {
		if a == first {
			victim = i
		}
	}
	// Make the sticky pick the *worst* least-loaded candidate, so plain
	// queue-depth routing would send the session elsewhere.
	byAddr[first].setDepth("alpha", 50)
	g.ProbeOnce()

	drive := func(phase string) {
		t.Helper()
		var failures atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					if httptestSessionRequest(t, g, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, session) != http.StatusOK {
						failures.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if f := failures.Load(); f != 0 {
			t.Fatalf("%s: %d client-visible failures, want 0", phase, f)
		}
	}
	parses := func() map[string]int64 {
		out := map[string]int64{}
		for _, a := range addrs {
			out[a] = byAddr[a].parses.Load()
		}
		return out
	}

	// Phase 1: healthy fleet — every session request sticks to the
	// rendezvous winner despite its queue depth.
	before := parses()
	drive("healthy")
	after := parses()
	if got := after[first] - before[first]; got != 100 {
		t.Errorf("healthy: sticky replica served %d/100 session requests", got)
	}
	if s, _ := byAddr[first].lastSession.Load().(string); s != session {
		t.Errorf("session header not forwarded: backend saw %q", s)
	}

	// Phase 2: eject the sticky replica; the session fails over to its
	// stable second choice.
	proxies[victim].SetFault(faultinject.Fault{Mode: faultinject.Drop})
	for i := 0; i < opt.FailThreshold; i++ {
		g.ProbeOnce()
	}
	if st, _ := g.BackendState(first); st != Ejected {
		t.Fatalf("sticky replica state = %v, want Ejected", st)
	}
	before = parses()
	drive("ejected")
	after = parses()
	if got := after[second] - before[second]; got != 100 {
		t.Errorf("ejected: failover replica served %d/100 session requests", got)
	}

	// Phase 3: restore and readmit; the session returns home.
	proxies[victim].SetFault(faultinject.Fault{Mode: faultinject.Pass})
	g.ProbeOnce()
	g.ProbeOnce()
	if st, _ := g.BackendState(first); st != Healthy {
		t.Fatalf("restored replica state = %v, want Healthy", st)
	}
	before = parses()
	drive("readmitted")
	after = parses()
	if got := after[first] - before[first]; got != 100 {
		t.Errorf("readmitted: sticky replica served %d/100 session requests", got)
	}

	if m := g.MetricsSnapshot(); m.Sticky < 300 {
		t.Errorf("Metrics.Sticky = %d, want >= 300 session-affine requests", m.Sticky)
	}
}

// TestGatewayConcurrentMembershipChange churns membership (add/remove of a
// third replica) under concurrent load: every request must complete exactly
// once, successfully, with no drops or double-completions. Runs under -race
// in CI.
func TestGatewayConcurrentMembershipChange(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	b3 := newFakeBackend(t, "three", "alpha")
	opt := testOptions()
	opt.Replication = 3
	opt.RetryBudget = 2
	g := New([]string{b1.ts.URL, b2.ts.URL}, opt)
	defer g.Close()

	const requests = 200
	var completions atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup

	// Membership churn: join and leave the third replica throughout the load.
	churnDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(churnDone)
		for i := 0; i < 20; i++ {
			g.AddBackend(b3.ts.URL)
			g.ProbeOnce()
			g.RemoveBackend(b3.ts.URL)
		}
	}()

	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status := httptestRequest(t, g, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}})
			completions.Add(1)
			if status != http.StatusOK {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()

	if c := completions.Load(); c != requests {
		t.Errorf("completions = %d, want exactly %d (no dropped or double-counted requests)", c, requests)
	}
	if f := failures.Load(); f != 0 {
		t.Errorf("failures under membership churn = %d, want 0", f)
	}
	// All requests the gateway routed are accounted on its counters.
	if m := g.MetricsSnapshot(); m.Requests != requests {
		t.Errorf("Metrics.Requests = %d, want %d", m.Requests, requests)
	}
}
