package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/serve"
)

// routeResult is one proxied reply: the backend's HTTP status and body pass
// through to the client verbatim, plus which backend answered and how many
// attempts the request cost.
type routeResult struct {
	status     int
	body       []byte
	backend    string
	attempts   int
	retryAfter time.Duration // the reply's Retry-After hint (429/503)
}

// errDegraded marks a skill with no live replica (HTTP 503 + "degraded" on
// the gateway's /skills).
var errDegraded = errors.New("gateway: skill degraded, no live replica")

// candidates is the routable replica set for one skill, best pick first:
// the skill's R ring replicas, filtered to routable backends whose last
// probe listed the skill serving, ordered healthy before half-open, then by
// probed queue depth (least-loaded), then by address for determinism. An
// empty skill routes across the whole membership (the fleet's own scored
// fallback picks the answering skill).
func (g *Gateway) candidates(skill string) []*backend {
	var cands []*backend
	if skill == "" {
		for _, b := range g.backendList() {
			if b.routable() && len(b.skillNames()) > 0 {
				cands = append(cands, b)
			}
		}
	} else {
		rg := g.ring.Load()
		if rg == nil {
			return nil
		}
		for _, b := range rg.replicas(skill, g.opt.Replication) {
			if b.routable() && b.servesSkill(skill) {
				cands = append(cands, b)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := cands[i].healthState(), cands[j].healthState()
		if si != sj {
			return si < sj // Healthy < HalfOpen
		}
		di, dj := cands[i].queueDepth(skill), cands[j].queueDepth(skill)
		if di != dj {
			return di < dj
		}
		return cands[i].addr < cands[j].addr
	})
	return cands
}

// stickyOrder reorders a session-carrying request's candidates by rendezvous
// hash of (session, backend), so every request of a dialogue session routes
// to the same live replica — where the fleet's session store holds the
// previous turn — regardless of queue-depth churn. The ordering is a full
// deterministic preference chain, not a single pin: when the session's
// first-choice backend is ejected, all its sessions fail over together to
// one stable second choice, and return as soon as readmission puts the
// backend back among the candidates.
func stickyOrder(cands []*backend, session string) {
	if session == "" || len(cands) < 2 {
		return
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return hashKey(session+"@"+cands[i].addr) > hashKey(session+"@"+cands[j].addr)
	})
}

// route answers one client request end to end: replica routing with retry
// and hedging, then — when the skill has no live replica — either the
// cross-skill fallback or a degraded 503.
func (g *Gateway) route(ctx context.Context, req serve.ParseRequest, session string) (routeResult, error) {
	g.requests.Add(1)
	if session != "" {
		g.sticky.Add(1)
	}
	res, err := g.routeReplicas(ctx, req, session)
	if !errors.Is(err, errDegraded) {
		return res, err
	}
	g.degraded.Add(1)
	if g.opt.CrossSkillFallback && req.Skill != "" {
		fb := req
		fb.Skill = "" // let a healthy fleet's scored fallback answer
		fres, ferr := g.routeReplicas(ctx, fb, session)
		if ferr == nil {
			g.fallbacks.Add(1)
			g.opt.Logf("gateway: skill %q degraded, answered by cross-skill fallback via %s", req.Skill, fres.backend)
			return fres, nil
		}
	}
	return res, err
}

// routeReplicas is the retry loop over a skill's replica set. Each
// iteration re-snapshots the candidates (membership and health move under
// load), prefers untried replicas, backs off with jitter between attempts —
// stretched to the server's Retry-After when every candidate has shed — and
// gives up when the retry budget or the deadline budget runs out. The first
// attempt may hedge.
func (g *Gateway) routeReplicas(ctx context.Context, req serve.ParseRequest, session string) (routeResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return routeResult{}, err
	}
	tried := map[*backend]bool{}
	var last routeResult
	var lastErr error
	routed := false
	for attempt := 0; attempt <= g.opt.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		cands := g.candidates(req.Skill)
		if len(cands) == 0 {
			break
		}
		stickyOrder(cands, session)
		routed = true
		pick := cands[0]
		backup := (*backend)(nil)
		for _, c := range cands {
			if !tried[c] {
				pick = c
				break
			}
		}
		for _, c := range cands {
			if c != pick {
				backup = c
				break
			}
		}
		var res routeResult
		if attempt == 0 && g.opt.Hedge && backup != nil {
			res, err = g.hedgedAttempt(ctx, pick, backup, req.Skill, body, session)
		} else {
			res, err = g.attempt(ctx, pick, body, session)
		}
		res.attempts = attempt + 1
		if err == nil && res.status == http.StatusOK {
			return res, nil
		}
		if err == nil && terminalStatus(res.status) {
			// The backend answered with a definitive client error (400, 404,
			// 408...): pass it through rather than burning retries.
			return res, nil
		}
		tried[pick] = true
		last, lastErr = res, err
		if attempt == g.opt.RetryBudget {
			break
		}
		g.retries.Add(1)
		wait := g.jitter(min(g.opt.MaxBackoff, g.opt.BaseBackoff<<attempt))
		if err == nil && res.status == http.StatusTooManyRequests {
			if ra := res.retryAfter; ra > wait && !anyUntried(cands, tried) {
				wait = ra // every replica shed: honor the server's price
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
			lastErr = context.DeadlineExceeded
			break
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop() // top of the next iteration exits on ctx.Err()
		}
	}
	if !routed {
		return routeResult{}, fmt.Errorf("%w: %q", errDegraded, req.Skill)
	}
	if lastErr != nil && (errors.Is(lastErr, context.DeadlineExceeded) || ctx.Err() != nil) {
		return last, context.DeadlineExceeded
	}
	if lastErr != nil {
		return last, fmt.Errorf("gateway: all attempts failed: %w", lastErr)
	}
	return last, nil
}

// terminalStatus reports statuses that retrying cannot improve: anything
// below 500 except a shed (429 — another replica may have capacity).
func terminalStatus(status int) bool {
	return status < 500 && status != http.StatusTooManyRequests
}

func anyUntried(cands []*backend, tried map[*backend]bool) bool {
	for _, c := range cands {
		if !tried[c] {
			return true
		}
	}
	return false
}

// attempt proxies one request body to one backend and classifies the reply.
// Connection failures, truncated replies and 5xx statuses feed the circuit
// breaker; sheds (429) and not-ready (503) are backpressure, not evidence
// the process is down — probes decide those. A canceled context (a hedge
// lost its race) records nothing.
func (g *Gateway) attempt(ctx context.Context, b *backend, body []byte, session string) (routeResult, error) {
	b.requests.Add(1)
	start := time.Now()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+"/parse", bytes.NewReader(body))
	if err != nil {
		return routeResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if session != "" {
		hreq.Header.Set(serve.SessionHeader, session)
	}
	serve.SetDeadlineHeader(hreq.Header, ctx)
	resp, err := g.hc.Do(hreq)
	if err != nil {
		if ctx.Err() == nil || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// A hang that ate the deadline is a health signal; a hedge
			// cancellation is not.
			b.failures.Add(1)
			b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
		}
		return routeResult{}, fmt.Errorf("gateway: %s: %w", b.addr, err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// Truncated or reset mid-body.
		b.failures.Add(1)
		b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
		return routeResult{}, fmt.Errorf("gateway: %s: reading reply: %w", b.addr, err)
	}
	res := routeResult{status: resp.StatusCode, body: rb, backend: b.addr,
		retryAfter: serve.ParseRetryAfter(resp.Header.Get("Retry-After"))}
	switch {
	case resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable:
		b.failures.Add(1)
		b.recordFailure(int32(g.opt.FailThreshold), g.opt.Logf)
	default:
		b.recordSuccess(g.opt.Logf)
		if resp.StatusCode == http.StatusOK {
			// Only clean parses feed the EWMA: sheds and not-ready replies
			// return fast and would drag the hedge delay toward zero.
			b.observeLatency(time.Since(start))
		}
	}
	return res, nil
}

// hedgedAttempt fires the primary attempt and, if it is still in flight
// after the hedge delay, the same request on the backup replica; the first
// success wins and the loser's context is canceled. A hedge that loses or
// errors never surfaces to the client — the primary's outcome does.
func (g *Gateway) hedgedAttempt(ctx context.Context, primary, backup *backend, skill string, body []byte, session string) (routeResult, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res   routeResult
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	go func() {
		res, err := g.attempt(cctx, primary, body, session)
		ch <- outcome{res, err, false}
	}()
	timer := time.NewTimer(g.hedgeDelay(primary, skill))
	defer timer.Stop()
	launched := false
	pending := 1
	var primaryOut *outcome
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil && out.res.status == http.StatusOK {
				if out.hedge {
					g.hedgeWins.Add(1)
				}
				return out.res, nil
			}
			if !out.hedge {
				primaryOut = &out
			}
			if pending == 0 {
				// Both (or the only) attempts failed: surface the primary's
				// outcome so retry classification stays deterministic.
				if primaryOut != nil {
					return primaryOut.res, primaryOut.err
				}
				return out.res, out.err
			}
		case <-timer.C:
			if !launched && pending > 0 {
				launched = true
				pending++
				g.hedges.Add(1)
				go func() {
					res, err := g.attempt(cctx, backup, body, session)
					ch <- outcome{res, err, true}
				}()
			}
		case <-ctx.Done():
			return routeResult{}, ctx.Err()
		}
	}
}

// hedgeDelay is how long the primary gets before the backup is hedged:
// fixed when HedgeAfter is set; else 2× the primary's live latency EWMA —
// per-request signal that tracks load shifts between probes; else 2× the
// probed p99 for the skill. The derived delays clamp to [1ms, 500ms], and
// 50ms covers the cold start before any signal exists.
func (g *Gateway) hedgeDelay(primary *backend, skill string) time.Duration {
	if g.opt.HedgeAfter > 0 {
		return g.opt.HedgeAfter
	}
	ms := primary.latencyEWMA()
	if ms <= 0 {
		ms = primary.skillP99(skill)
	}
	if ms <= 0 {
		return 50 * time.Millisecond
	}
	d := time.Duration(2 * ms * float64(time.Millisecond))
	return min(max(d, time.Millisecond), 500*time.Millisecond)
}
