package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"repro/internal/serve"
)

// BackendMetrics is one backend's view on the gateway's GET /metrics.
type BackendMetrics struct {
	Addr             string  `json:"addr"`
	State            string  `json:"state"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	Ejections        int64   `json:"ejections"`
	Readmissions     int64   `json:"readmissions"`
	Requests         int64   `json:"requests"` // proxied /parse attempts
	Failures         int64   `json:"failures"` // of those, failed (transport/5xx)
	QueueDepth       int64   `json:"queue_depth"`
	Skills           int     `json:"skills"`  // skills the last probe listed
	EWMAMS           float64 `json:"ewma_ms"` // live successful-request latency EWMA
}

// Metrics is the gateway's GET /metrics reply: routing-tier counters plus
// per-backend health.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Retries       int64   `json:"retries"`
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	Fallbacks     int64   `json:"fallbacks"`
	Degraded      int64   `json:"degraded"`
	// Sticky counts requests that carried an X-Genie-Session and were routed
	// by session affinity rather than least-loaded pick.
	Sticky   int64            `json:"sticky"`
	P50MS    float64          `json:"p50_ms"`
	P99MS    float64          `json:"p99_ms"`
	Backends []BackendMetrics `json:"backends"`
}

// handleParse is the gateway's POST /parse: decode, route across replicas,
// pass the winning backend's reply through (naming the backend and attempt
// count in response headers).
func (g *Gateway) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req serve.ParseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.RequestWords()) == 0 {
		http.Error(w, "empty sentence", http.StatusBadRequest)
		return
	}
	ctx, cancel := serve.DeadlineContext(r)
	defer cancel()
	start := time.Now()
	res, err := g.route(ctx, req, r.Header.Get(serve.SessionHeader))
	switch {
	case err == nil:
		if res.backend != "" {
			w.Header().Set("X-Genie-Backend", res.backend)
		}
		if res.attempts > 1 {
			w.Header().Set("X-Genie-Attempts", itoa(res.attempts))
		}
		if res.retryAfter > 0 && res.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		if res.status == http.StatusOK {
			g.lat.Observe(float64(time.Since(start).Microseconds()) / 1000)
			w.Header().Set("Content-Type", "application/json")
		}
		w.WriteHeader(res.status)
		w.Write(res.body)
	case errors.Is(err, errDegraded):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		http.Error(w, "gateway: deadline budget exhausted: "+err.Error(), http.StatusRequestTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// handleSkills aggregates skill state across the membership: a skill is
// "ready" when at least one of its ring replicas is routable and serving,
// "degraded" otherwise; Replicas counts the live ones.
func (g *Gateway) handleSkills(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, serve.SkillsResponse{Skills: g.SkillsSnapshot()})
}

// SkillsSnapshot is the aggregated fleet-wide skill table the gateway
// serves on /skills.
func (g *Gateway) SkillsSnapshot() []serve.SkillInfo {
	names := map[string]bool{}
	for _, b := range g.backendList() {
		for name := range b.skillNames() {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	rg := g.ring.Load()
	out := make([]serve.SkillInfo, 0, len(sorted))
	for _, name := range sorted {
		info := serve.SkillInfo{Name: name, Status: StatusDegraded}
		if rg != nil {
			for _, b := range rg.replicas(name, g.opt.Replication) {
				if b.routable() && b.servesSkill(name) {
					info.Replicas++
				}
			}
		}
		if info.Replicas > 0 {
			info.Status = "ready"
		}
		out = append(out, info)
	}
	return out
}

// BackendState reports one backend's health state (tests and operators).
func (g *Gateway) BackendState(addr string) (State, bool) {
	g.mu.Lock()
	b, ok := g.backends[addr]
	g.mu.Unlock()
	if !ok {
		return Ejected, false
	}
	return b.healthState(), true
}

// MetricsSnapshot assembles the gateway's live metrics.
func (g *Gateway) MetricsSnapshot() Metrics {
	m := Metrics{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Requests:      g.requests.Load(),
		Retries:       g.retries.Load(),
		Hedges:        g.hedges.Load(),
		HedgeWins:     g.hedgeWins.Load(),
		Fallbacks:     g.fallbacks.Load(),
		Degraded:      g.degraded.Load(),
		Sticky:        g.sticky.Load(),
	}
	m.P50MS, m.P99MS = g.lat.Quantiles()
	backends := g.backendList()
	sort.Slice(backends, func(i, j int) bool { return backends[i].addr < backends[j].addr })
	for _, b := range backends {
		m.Backends = append(m.Backends, BackendMetrics{
			Addr:             b.addr,
			State:            b.healthState().String(),
			ConsecutiveFails: int(b.fails.Load()),
			Ejections:        b.ejections.Load(),
			Readmissions:     b.readmits.Load(),
			Requests:         b.requests.Load(),
			Failures:         b.failures.Load(),
			QueueDepth:       b.queueDepth(""),
			Skills:           len(b.skillNames()),
			EWMAMS:           b.latencyEWMA(),
		})
	}
	return m
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, g.MetricsSnapshot())
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	ready := 0
	for _, s := range g.SkillsSnapshot() {
		if s.Status == "ready" {
			ready++
		}
	}
	serve.WriteJSON(w, serve.HealthResponse{OK: true, Requests: g.requests.Load(), Skills: ready})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
