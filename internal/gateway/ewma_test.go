package gateway

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestLatencyEWMATracksTraffic: successful parses feed the backend's latency
// EWMA; errors and sheds do not.
func TestLatencyEWMATracksTraffic(t *testing.T) {
	fb := newFakeBackend(t, "replica", "alpha")
	fb.parseDelay.Store(int64(20 * time.Millisecond))
	g, ts := newTestGateway(t, testOptions(), fb)
	g.ProbeOnce()

	for i := 0; i < 5; i++ {
		resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parse %d = HTTP %d", i, resp.StatusCode)
		}
	}
	b := g.backendList()[0]
	ew := b.latencyEWMA()
	if ew < 15 {
		t.Fatalf("EWMA = %.2fms after 20ms parses, want >= 15ms", ew)
	}
	m := g.MetricsSnapshot()
	if len(m.Backends) != 1 || m.Backends[0].EWMAMS != ew {
		t.Fatalf("metrics ewma_ms = %+v, want %v surfaced", m.Backends, ew)
	}

	// A shedding backend answers fast — that speed must not poison the EWMA.
	fb.parseDelay.Store(0)
	fb.parseStatus.Store(http.StatusTooManyRequests)
	for i := 0; i < 10; i++ {
		postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	}
	if got := b.latencyEWMA(); got != ew {
		t.Fatalf("EWMA moved on non-200 replies: %.2f -> %.2f", ew, got)
	}
}

// TestHedgeDelayPrefersEWMA: the derived hedge delay uses the live EWMA when
// traffic has been observed, the probed p99 before that, and 50ms cold.
func TestHedgeDelayPrefersEWMA(t *testing.T) {
	fb := newFakeBackend(t, "replica", "alpha")
	g, _ := newTestGateway(t, testOptions(), fb)
	b := g.backendList()[0]

	if d := g.hedgeDelay(b, "alpha"); d != 50*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want 50ms", d)
	}
	b.updateProbe(map[string]string{"alpha": "ready"}, map[string]int64{}, map[string]float64{"alpha": 30})
	if d := g.hedgeDelay(b, "alpha"); d != 60*time.Millisecond {
		t.Fatalf("p99-derived hedge delay = %v, want 2x30ms", d)
	}
	b.observeLatency(10 * time.Millisecond)
	if d := g.hedgeDelay(b, "alpha"); d != 20*time.Millisecond {
		t.Fatalf("EWMA-derived hedge delay = %v, want 2x10ms", d)
	}
	// Clamps hold at the extremes.
	b.ewmaBits.Store(0)
	b.observeLatency(10 * time.Microsecond)
	if d := g.hedgeDelay(b, "alpha"); d != time.Millisecond {
		t.Fatalf("hedge delay floor = %v, want 1ms", d)
	}
	b.ewmaBits.Store(0)
	b.observeLatency(3 * time.Second)
	if d := g.hedgeDelay(b, "alpha"); d != 500*time.Millisecond {
		t.Fatalf("hedge delay ceiling = %v, want 500ms", d)
	}
	// An explicit HedgeAfter overrides every derived signal.
	g.opt.HedgeAfter = 7 * time.Millisecond
	if d := g.hedgeDelay(b, "alpha"); d != 7*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v, want 7ms", d)
	}
}
