package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is an immutable consistent-hash ring over the current membership.
// Each backend projects VirtualNodes points onto the ring; a skill routes to
// the first Replication distinct backends clockwise of its own hash. The
// ring only changes on membership change (add/remove), never on health
// change — health filters at candidate selection — so adding or losing one
// backend remaps only the skills adjacent to that backend's points instead
// of reshuffling every skill across the fleet.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	b    *backend
}

func buildRing(backends []*backend, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(backends)*vnodes)}
	for _, b := range backends {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", b.addr, i)), b: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// replicas returns the first n distinct backends clockwise of key's hash,
// in ring order (the replica set of a skill).
func (r *ring) replicas(key string, n int) []*backend {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hashKey(key) })
	out := make([]*backend, 0, n)
	seen := make(map[*backend]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.b] {
			seen[p.b] = true
			out = append(out, p.b)
		}
	}
	return out
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
