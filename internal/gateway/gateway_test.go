package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeBackend mimics a fleet process's HTTP surface (/parse, /healthz,
// /skills, /metrics) with twistable behavior: health, per-skill queue depth
// and p99 (the probe signal), parse delay and injected parse status.
type fakeBackend struct {
	ts     *httptest.Server
	name   string
	skills []string

	ok          atomic.Bool  // /healthz answers OK
	parseStatus atomic.Int32 // non-zero: /parse answers this status
	parseDelay  atomic.Int64 // ns to sleep before answering /parse

	mu    sync.Mutex
	depth map[string]int64
	p99   map[string]float64

	parses       atomic.Int64
	sawDeadline  atomic.Bool  // a /parse carried the deadline-budget header
	lastDeadline atomic.Value // string
	lastSession  atomic.Value // string: last X-Genie-Session a /parse carried
}

func newFakeBackend(t *testing.T, name string, skills ...string) *fakeBackend {
	t.Helper()
	b := &fakeBackend{name: name, skills: skills, depth: map[string]int64{}, p99: map[string]float64{}}
	b.ok.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !b.ok.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		serve.WriteJSON(w, serve.HealthResponse{OK: true})
	})
	mux.HandleFunc("/skills", func(w http.ResponseWriter, r *http.Request) {
		var out serve.SkillsResponse
		for _, s := range b.skills {
			out.Skills = append(out.Skills, serve.SkillInfo{Name: s, Status: "ready"})
		}
		serve.WriteJSON(w, out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		var out serve.MetricsResponse
		for _, s := range b.skills {
			out.Skills = append(out.Skills, serve.SkillMetrics{Name: s, QueueDepth: b.depth[s], P99MS: b.p99[s]})
		}
		b.mu.Unlock()
		serve.WriteJSON(w, out)
	})
	mux.HandleFunc("/parse", func(w http.ResponseWriter, r *http.Request) {
		b.parses.Add(1)
		if h := r.Header.Get(serve.DeadlineHeader); h != "" {
			b.sawDeadline.Store(true)
			b.lastDeadline.Store(h)
		}
		if h := r.Header.Get(serve.SessionHeader); h != "" {
			b.lastSession.Store(h)
		}
		if d := time.Duration(b.parseDelay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		if code := int(b.parseStatus.Load()); code != 0 {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "0.02")
			}
			http.Error(w, "injected", code)
			return
		}
		var req serve.ParseRequest
		json.NewDecoder(r.Body).Decode(&req)
		serve.WriteJSON(w, serve.ParseResponse{
			Skill: req.Skill, Tokens: []string{"now", "=>", b.name}, Program: "now => " + b.name,
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func (b *fakeBackend) setDepth(skill string, d int64) {
	b.mu.Lock()
	b.depth[skill] = d
	b.mu.Unlock()
}

func (b *fakeBackend) setP99(skill string, ms float64) {
	b.mu.Lock()
	b.p99[skill] = ms
	b.mu.Unlock()
}

// testOptions parks the background probe loop (an hour) so tests drive
// health deterministically with ProbeOnce.
func testOptions() Options {
	return Options{
		ProbeInterval: time.Hour,
		ProbeTimeout:  2 * time.Second,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
	}
}

func newTestGateway(t *testing.T, opt Options, backends ...*fakeBackend) (*Gateway, *httptest.Server) {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.ts.URL
	}
	g := New(addrs, opt)
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func postParse(t *testing.T, url string, req serve.ParseRequest, hdr map[string]string) (*http.Response, serve.ParseResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/parse", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.ParseResponse
	json.NewDecoder(resp.Body).Decode(&pr)
	return resp, pr
}

// TestGatewayRoutesBySkillConsistently: the same skill hashes to the same
// replica set request after request, and the replica set holds R distinct
// backends.
func TestGatewayRoutesBySkillConsistently(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha", "beta")
	b2 := newFakeBackend(t, "two", "alpha", "beta")
	b3 := newFakeBackend(t, "three", "alpha", "beta")
	opt := testOptions()
	opt.Replication = 2
	g, ts := newTestGateway(t, opt, b1, b2, b3)

	rg := g.ring.Load()
	reps := rg.replicas("alpha", 2)
	if len(reps) != 2 || reps[0] == reps[1] {
		t.Fatalf("replicas(alpha, 2) = %d distinct backends, want 2", len(reps))
	}
	repAddrs := map[string]bool{reps[0].addr: true, reps[1].addr: true}

	first := ""
	for i := 0; i < 8; i++ {
		resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		got := resp.Header.Get("X-Genie-Backend")
		if !repAddrs[got] {
			t.Fatalf("request %d answered by %s, outside the replica set %v", i, got, repAddrs)
		}
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("routing flapped between %s and %s with stable health and load", first, got)
		}
	}
}

// TestGatewayLeastLoadedPick: with equal health, the replica with the lower
// probed queue depth takes the traffic.
func TestGatewayLeastLoadedPick(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.setDepth("alpha", 50)
	b2.setDepth("alpha", 0)
	g.ProbeOnce()
	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if got := resp.Header.Get("X-Genie-Backend"); got != b2.ts.URL {
		t.Errorf("loaded pick answered by %s, want the idle backend %s", got, b2.ts.URL)
	}

	// Flip the load; the pick follows.
	b1.setDepth("alpha", 0)
	b2.setDepth("alpha", 50)
	g.ProbeOnce()
	resp, _ = postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if got := resp.Header.Get("X-Genie-Backend"); got != b1.ts.URL {
		t.Errorf("after load flip answered by %s, want %s", got, b1.ts.URL)
	}
}

// TestGatewayRetryFailsOver: a 500 from the preferred replica is retried on
// the next one within the budget, invisibly to the client.
func TestGatewayRetryFailsOver(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	opt.RetryBudget = 2
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.setDepth("alpha", 0)
	b2.setDepth("alpha", 10) // prefer b1
	g.ProbeOnce()
	b1.parseStatus.Store(http.StatusInternalServerError)

	resp, pr := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via retry", resp.StatusCode)
	}
	if resp.Header.Get("X-Genie-Backend") != b2.ts.URL {
		t.Errorf("answered by %s, want failover to %s", resp.Header.Get("X-Genie-Backend"), b2.ts.URL)
	}
	if resp.Header.Get("X-Genie-Attempts") != "2" {
		t.Errorf("X-Genie-Attempts = %q, want 2", resp.Header.Get("X-Genie-Attempts"))
	}
	if pr.Program != "now => two" {
		t.Errorf("program = %q", pr.Program)
	}
	if m := g.MetricsSnapshot(); m.Retries < 1 {
		t.Errorf("Metrics.Retries = %d, want >= 1", m.Retries)
	}
}

// TestGatewayShedRetry: a 429 is backpressure, not a health failure — the
// gateway retries elsewhere and the shedding backend stays healthy.
func TestGatewayShedRetry(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.setDepth("alpha", 0)
	b2.setDepth("alpha", 10)
	g.ProbeOnce()
	b1.parseStatus.Store(http.StatusTooManyRequests)

	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via shed retry", resp.StatusCode)
	}
	if st, _ := g.BackendState(b1.ts.URL); st != Healthy {
		t.Errorf("shedding backend state = %v, want Healthy (429 must not feed the breaker)", st)
	}
}

// TestGatewayEjectionAndReadmission walks the circuit breaker end to end:
// FailThreshold failed probes eject, traffic routes around the ejection, and
// a restored backend is readmitted within two probes (half-open, then
// healthy).
func TestGatewayEjectionAndReadmission(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	opt.FailThreshold = 3
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.setDepth("alpha", 0)
	b2.setDepth("alpha", 10) // b1 preferred while healthy
	g.ProbeOnce()

	b1.ok.Store(false)
	for i := 0; i < 3; i++ {
		g.ProbeOnce()
	}
	if st, _ := g.BackendState(b1.ts.URL); st != Ejected {
		t.Fatalf("state after %d failed probes = %v, want Ejected", 3, st)
	}

	// Ejected: traffic routes around it despite the depth preference.
	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Genie-Backend") != b2.ts.URL {
		t.Fatalf("during ejection: status %d via %s, want 200 via %s",
			resp.StatusCode, resp.Header.Get("X-Genie-Backend"), b2.ts.URL)
	}

	// Restore: readmitted within two probe intervals.
	b1.ok.Store(true)
	g.ProbeOnce()
	if st, _ := g.BackendState(b1.ts.URL); st != HalfOpen {
		t.Fatalf("state after restore probe 1 = %v, want HalfOpen", st)
	}
	g.ProbeOnce()
	if st, _ := g.BackendState(b1.ts.URL); st != Healthy {
		t.Fatalf("state after restore probe 2 = %v, want Healthy", st)
	}
	if m := g.MetricsSnapshot(); m.Backends[0].Ejections < 1 && m.Backends[1].Ejections < 1 {
		t.Errorf("no ejection counted in metrics: %+v", m.Backends)
	}
}

// TestGatewayDegradedSkill: a skill whose only replica is gone answers 503
// and shows degraded on /skills; with CrossSkillFallback armed the request
// is answered by a healthy backend's scored fallback instead.
func TestGatewayDegradedSkill(t *testing.T) {
	b1 := newFakeBackend(t, "one", "gamma")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	opt.FailThreshold = 2
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.ok.Store(false)
	g.ProbeOnce()
	g.ProbeOnce()
	if st, _ := g.BackendState(b1.ts.URL); st != Ejected {
		t.Fatalf("gamma's backend not ejected: %v", st)
	}

	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "gamma", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded skill status = %d, want 503", resp.StatusCode)
	}
	found := false
	for _, s := range g.SkillsSnapshot() {
		if s.Name == "gamma" {
			found = true
			if s.Status != StatusDegraded || s.Replicas != 0 {
				t.Errorf("gamma on /skills = %+v, want degraded with 0 replicas", s)
			}
		}
	}
	if !found {
		t.Error("gamma missing from the aggregated /skills")
	}

	// Same topology with the fallback armed: the request is answered.
	opt2 := testOptions()
	opt2.Replication = 2
	opt2.FailThreshold = 2
	opt2.CrossSkillFallback = true
	b3 := newFakeBackend(t, "three", "gamma")
	b4 := newFakeBackend(t, "four", "alpha")
	g2, ts2 := newTestGateway(t, opt2, b3, b4)
	b3.ok.Store(false)
	g2.ProbeOnce()
	g2.ProbeOnce()
	resp2, pr2 := postParse(t, ts2.URL, serve.ParseRequest{Skill: "gamma", Words: []string{"x"}}, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fallback status = %d, want 200", resp2.StatusCode)
	}
	if pr2.Program != "now => four" {
		t.Errorf("fallback answered %q, want the healthy backend", pr2.Program)
	}
	if m := g2.MetricsSnapshot(); m.Fallbacks != 1 || m.Degraded != 1 {
		t.Errorf("fallback metrics = fallbacks=%d degraded=%d, want 1/1", m.Fallbacks, m.Degraded)
	}
}

// TestGatewayHedgeWins: a slow primary is hedged to the backup after the
// hedge delay and the backup's answer wins.
func TestGatewayHedgeWins(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	b2 := newFakeBackend(t, "two", "alpha")
	opt := testOptions()
	opt.Replication = 2
	opt.Hedge = true
	opt.HedgeAfter = 10 * time.Millisecond
	g, ts := newTestGateway(t, opt, b1, b2)

	b1.setDepth("alpha", 0)
	b2.setDepth("alpha", 10) // b1 is primary
	g.ProbeOnce()
	b1.parseDelay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	resp, pr := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if pr.Program != "now => two" {
		t.Errorf("answered %q, want the hedged backup", pr.Program)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("hedged request took %v, the slow primary's latency", elapsed)
	}
	if m := g.MetricsSnapshot(); m.Hedges < 1 || m.HedgeWins < 1 {
		t.Errorf("hedge metrics = hedges=%d wins=%d, want >= 1/1", m.Hedges, m.HedgeWins)
	}
}

// TestGatewayDeadlinePropagation: the client's deadline-budget header rides
// through the gateway to the backend, and an exhausted budget answers 408.
func TestGatewayDeadlinePropagation(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	opt := testOptions()
	opt.Replication = 1
	g, ts := newTestGateway(t, opt, b1)
	_ = g

	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}},
		map[string]string{serve.DeadlineHeader: "5000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !b1.sawDeadline.Load() {
		t.Error("backend never saw the propagated deadline header")
	}

	// A budget shorter than the backend's latency: 408, bounded by the budget.
	b1.parseDelay.Store(int64(2 * time.Second))
	start := time.Now()
	resp2, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "alpha", Words: []string{"x"}},
		map[string]string{serve.DeadlineHeader: "60"})
	if resp2.StatusCode != http.StatusRequestTimeout {
		t.Errorf("expired-budget status = %d, want 408", resp2.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("408 took %v, want roughly the 60ms budget", elapsed)
	}
}

// TestGatewayUnknownSkillTerminal: requests for a skill nobody has ever
// served answer 503 degraded without burning the retry budget on backends.
func TestGatewayUnknownSkillTerminal(t *testing.T) {
	b1 := newFakeBackend(t, "one", "alpha")
	opt := testOptions()
	g, ts := newTestGateway(t, opt, b1)

	before := b1.parses.Load()
	resp, _ := postParse(t, ts.URL, serve.ParseRequest{Skill: "nope", Words: []string{"x"}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unknown skill status = %d, want 503", resp.StatusCode)
	}
	if b1.parses.Load() != before {
		t.Error("unknown skill burned a backend attempt")
	}
	if m := g.MetricsSnapshot(); m.Degraded < 1 {
		t.Errorf("Metrics.Degraded = %d, want >= 1", m.Degraded)
	}
}
