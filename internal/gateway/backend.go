package gateway

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// State is a backend's health state. The machine is a circuit breaker fed
// by both probes and proxied traffic:
//
//	Healthy --FailThreshold consecutive failures--> Ejected
//	Ejected --1 success (probe)-----------------> HalfOpen
//	HalfOpen --1 more success-------------------> Healthy (readmitted)
//	HalfOpen --any failure----------------------> Ejected
//
// Ejected backends receive no traffic but keep being probed at the probe
// interval, so a restored backend is readmitted within two probe intervals
// (one success to go half-open, one to close the circuit). Half-open
// backends are routable — they take trial traffic, preferred below healthy
// replicas — and a single failure trips them straight back to ejected.
type State int32

const (
	Healthy State = iota
	HalfOpen
	Ejected
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case HalfOpen:
		return "half-open"
	case Ejected:
		return "ejected"
	}
	return "unknown"
}

// backend is one fleet process behind the gateway: its address, health
// state, and the serving signal from the last successful probe (/skills
// membership, /metrics queue depths and p99 for least-loaded pick and
// hedge-delay derivation).
type backend struct {
	addr string // base URL, trailing slash trimmed

	state     atomic.Int32
	fails     atomic.Int32 // consecutive failures toward ejection
	ejections atomic.Int64
	readmits  atomic.Int64
	requests  atomic.Int64  // proxied /parse attempts
	failures  atomic.Int64  // failed proxied attempts (transport or 5xx)
	ewmaBits  atomic.Uint64 // float64 bits: EWMA of successful request latency, ms (0 = no signal)

	mu        sync.Mutex
	skills    map[string]string  // skill -> lifecycle status, last /skills probe
	depth     map[string]int64   // skill -> queue depth, last /metrics probe
	p99       map[string]float64 // skill -> p99 ms, last /metrics probe
	lastProbe time.Time
}

func newBackend(addr string) *backend {
	return &backend{addr: addr, skills: map[string]string{}, depth: map[string]int64{}, p99: map[string]float64{}}
}

func (b *backend) healthState() State { return State(b.state.Load()) }

// routable reports whether the router may pick this backend (healthy, or
// half-open trial traffic).
func (b *backend) routable() bool { return b.healthState() != Ejected }

// servesSkill reports whether the backend's last /skills probe listed the
// skill as serving (ready, or reloading — which serves the old snapshot).
func (b *backend) servesSkill(name string) bool {
	b.mu.Lock()
	status, ok := b.skills[name]
	b.mu.Unlock()
	return ok && (status == "ready" || status == "reloading")
}

// skillNames snapshots the skills the backend listed, with their status.
func (b *backend) skillNames() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.skills))
	for k, v := range b.skills {
		out[k] = v
	}
	return out
}

// queueDepth is the probed queue depth for one skill ("" sums all skills);
// the least-loaded pick orders replicas by it.
func (b *backend) queueDepth(skill string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if skill != "" {
		return b.depth[skill]
	}
	var sum int64
	for _, d := range b.depth {
		sum += d
	}
	return sum
}

// skillP99 is the probed p99 latency (ms) for a skill, 0 when unknown.
func (b *backend) skillP99(skill string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p99[skill]
}

// updateProbe installs a successful probe's serving signal.
func (b *backend) updateProbe(skills map[string]string, depth map[string]int64, p99 map[string]float64) {
	b.mu.Lock()
	b.skills, b.depth, b.p99 = skills, depth, p99
	b.lastProbe = time.Now()
	b.mu.Unlock()
}

// ewmaAlpha weights each new latency observation in the backend's moving
// average. 0.2 converges within a handful of requests yet rides out single
// outliers.
const ewmaAlpha = 0.2

// observeLatency folds one successful proxied request's round trip into the
// backend's latency EWMA — the live per-traffic signal hedge delays prefer
// over the probe-interval p99.
func (b *backend) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := b.ewmaBits.Load()
		next := ms
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*ms
		}
		if b.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// latencyEWMA returns the smoothed successful-request latency in ms
// (0 = no traffic observed yet).
func (b *backend) latencyEWMA() float64 {
	return math.Float64frombits(b.ewmaBits.Load())
}

// recordFailure feeds the circuit breaker: FailThreshold consecutive
// failures eject a healthy backend; any failure in half-open re-ejects
// immediately.
func (b *backend) recordFailure(threshold int32, logf func(string, ...any)) {
	n := b.fails.Add(1)
	switch b.healthState() {
	case Healthy:
		if n >= threshold {
			b.state.Store(int32(Ejected))
			b.ejections.Add(1)
			logf("gateway: %s: ejected after %d consecutive failures", b.addr, n)
		}
	case HalfOpen:
		b.state.Store(int32(Ejected))
		b.ejections.Add(1)
		logf("gateway: %s: half-open trial failed, re-ejected", b.addr)
	}
}

// recordSuccess resets the failure streak and walks the readmission path:
// ejected goes half-open on its first success, half-open closes the circuit
// on the next.
func (b *backend) recordSuccess(logf func(string, ...any)) {
	b.fails.Store(0)
	switch b.healthState() {
	case Ejected:
		b.state.Store(int32(HalfOpen))
		logf("gateway: %s: probe succeeded, half-open", b.addr)
	case HalfOpen:
		b.state.Store(int32(Healthy))
		b.readmits.Add(1)
		logf("gateway: %s: readmitted", b.addr)
	}
}
