package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/genie"
	"repro/internal/model"
)

// tinyScale is a deliberately small preset: big enough that every pipeline
// stage produces data, small enough that training a model takes well under a
// second even with -race.
func tinyScale(workers int) genie.Scale {
	s := genie.Unit
	s.SynthTarget = 12
	s.MaxDepth = 3
	s.ParaphraseMax = 80
	s.TrainCap = 150
	s.EvalN = 20
	s.Seeds = []int64{1, 2}
	s.Workers = workers
	s.Model = model.Config{
		EmbedDim: 16, HiddenDim: 24, LR: 5e-3, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, PretrainLM: false,
		MaxDecodeLen: 24, MinVocabCount: 3,
	}
	return s
}

// TestFig8ParallelDeterminism asserts the parallel-training determinism
// contract: the Fig8 harness produces bit-identical results for Workers=1
// and Workers=4 (run with -race in CI to also catch data races in the shared
// genie.Data).
func TestFig8ParallelDeterminism(t *testing.T) {
	seq := Fig8(tinyScale(1), 1)
	par := Fig8(tinyScale(4), 1)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig8 differs between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", seq.Cells, par.Cells)
	}
}

// TestTable3ParallelDeterminism covers the Table3 merge arithmetic
// (ci*nSeeds+si) the same way.
func TestTable3ParallelDeterminism(t *testing.T) {
	seq := Table3(tinyScale(1), 1)
	par := Table3(tinyScale(4), 1)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Table3 differs between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig9TACLParallelDeterminism covers the even-baseline/odd-genie job
// interleave shared by fig9TACL and runStrategyPair.
func TestFig9TACLParallelDeterminism(t *testing.T) {
	seq := fig9TACL(tinyScale(1), 1)
	par := fig9TACL(tinyScale(4), 1)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("fig9TACL differs between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunJobsCoversAllIndicesOnce checks the pool's scheduling invariants
// directly: every job index runs exactly once at any worker count.
func TestRunJobsCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 37
		var counts [n]atomic.Int32
		runJobs(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}
