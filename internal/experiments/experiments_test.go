package experiments

import (
	"bytes"
	"testing"

	"repro/internal/genie"
)

// Non-training experiments run at unit scale in tests; the training-heavy
// ones (Fig 8, Table 3, Fig 9, Errors, Limitation) are exercised by the
// benchmark harness and cmd/genie.

func TestFig7(t *testing.T) {
	res := Fig7(genie.Unit, 1)
	f := res.Chars.Fractions()
	if res.Chars.Total == 0 {
		t.Fatal("empty training set")
	}
	// Shape check: primitives dominate, all five buckets present (Fig 7:
	// 48/20/15/5/13).
	if f["primitive"] < f["compound+param-pass"] {
		t.Errorf("primitives should outnumber param-passing compounds: %v", f)
	}
	for k, v := range f {
		if v < 0 || v > 100 {
			t.Errorf("bucket %s out of range: %v", k, v)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestStats(t *testing.T) {
	res := Stats(genie.Unit, 1)
	if res.Synth.Sentences == 0 || res.Synth.DistinctPrograms == 0 {
		t.Fatal("no synthesis stats")
	}
	// §5.2 shape: vocabulary grows at each stage.
	if !(res.VocabSynth < res.VocabPara && res.VocabPara < res.VocabAugmented) {
		t.Errorf("vocabulary should grow through the pipeline: %d -> %d -> %d",
			res.VocabSynth, res.VocabPara, res.VocabAugmented)
	}
	if res.Novelty.NewWordRate <= 0 || res.Novelty.NewBigramRate <= res.Novelty.NewWordRate {
		t.Errorf("paraphrase novelty shape wrong: %+v", res.Novelty)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestIFTTTCleanupExperiment(t *testing.T) {
	res := IFTTTCleanup(genie.Unit, 1)
	if res.Descriptions == 0 {
		t.Fatal("no descriptions generated")
	}
	for _, k := range []string{"second-person", "blank", "ui-text"} {
		if res.RuleCounts[k] == 0 {
			t.Errorf("rule %q never fired", k)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}
