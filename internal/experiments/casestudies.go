package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/genie"
	"repro/internal/ifttt"
	"repro/internal/model"
	"repro/internal/nltemplate"
	"repro/internal/tacl"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// Fig9Row is one case study: Baseline (Wang et al.: paraphrase-only, no
// augmentation, no parameter expansion) vs Genie, on cheatsheet test data.
type Fig9Row struct {
	Case     string
	Baseline Fig8Cell
	Genie    Fig8Cell
}

// Fig9Result is the three case studies of Section 6.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 runs the Spotify, TACL and TT+A case studies.
func Fig9(scale genie.Scale, baseSeed int64) Fig9Result {
	return Fig9Result{Rows: []Fig9Row{
		fig9Spotify(scale, baseSeed),
		fig9TACL(scale, baseSeed),
		fig9Aggregates(scale, baseSeed),
	}}
}

// fig9Spotify: the comprehensive music skill of Section 6.1 with quote-free
// song/artist parameters.
func fig9Spotify(scale genie.Scale, baseSeed int64) Fig9Row {
	lib := thingpedia.SpotifyOnly()
	d := genie.BuildData(lib, nltemplate.Options{GenericFilters: true, MaxFilterParams: 3}, scale, baseSeed)
	return runStrategyPair("Spotify", scale, d, d.Cheatsheet)
}

// fig9Aggregates: the TT+A extension of Section 6.3, evaluated on
// aggregation commands only.
func fig9Aggregates(scale genie.Scale, baseSeed int64) Fig9Row {
	lib := thingpedia.Builtin()
	opts := nltemplate.DefaultOptions
	opts.Aggregates = true
	d := genie.BuildData(lib, opts, scale, baseSeed)
	aggOnly := func(set []dataset.Example) []dataset.Example {
		var out []dataset.Example
		for i := range set {
			if set[i].Program.Query != nil && set[i].Program.Query.Kind == thingtalk.QueryAggregate {
				out = append(out, set[i])
			}
		}
		return out
	}
	return runStrategyPair("TT+A", scale, d, aggOnly(d.Cheatsheet))
}

func runStrategyPair(name string, scale genie.Scale, d *genie.Data, testSet []dataset.Example) Fig9Row {
	row := Fig9Row{Case: name}
	// Each (seed, strategy) training run is independent; fan out over
	// scale.Workers and merge in job order.
	strategies := []genie.Strategy{genie.StrategyBaseline, genie.StrategyGenie}
	accs := make([]float64, 2*len(scale.Seeds))
	runJobs(scale.Workers, len(accs), func(i int) {
		seed := scale.Seeds[i/2]
		p := d.Train(genie.TrainOptions{Strategy: strategies[i%2], Topt: genie.CanonicalTargets, Model: scale.Model, Seed: seed})
		accs[i] = d.Evaluate(p, testSet).ProgramAccuracy()
	})
	var base, gen []float64
	for si := range scale.Seeds {
		base = append(base, accs[2*si])
		gen = append(gen, accs[2*si+1])
	}
	row.Baseline.Mean, row.Baseline.HalfRange = eval.MeanRange(base)
	row.Genie.Mean, row.Genie.HalfRange = eval.MeanRange(gen)
	return row
}

// fig9TACL: the access-control language of Section 6.2. The dataset depends
// only on baseSeed, so it is built once; the per-(seed, variant) training
// runs fan out like runStrategyPair's.
func fig9TACL(scale genie.Scale, baseSeed int64) Fig9Row {
	lib := thingpedia.Builtin()
	row := Fig9Row{Case: "TACL"}
	d := tacl.Build(lib, scale.SynthTarget, 3, scale.ParaphraseMax, 3, baseSeed)
	accs := make([]float64, 2*len(scale.Seeds))
	runJobs(scale.Workers, len(accs), func(i int) {
		mcfg := scale.Model
		mcfg.Seed = scale.Seeds[i/2]
		// Even jobs: baseline (paraphrases only, single instantiation);
		// odd jobs: Genie (synthesized + expanded paraphrases).
		train := d.TrainBase
		if i%2 == 1 {
			train = d.Train
		}
		p := trainTACL(train, d.ParaTest, mcfg)
		accs[i] = tacl.Evaluate(p, d.Cheatsheet, lib)
	})
	var base, gen []float64
	for si := range scale.Seeds {
		base = append(base, accs[2*si])
		gen = append(gen, accs[2*si+1])
	}
	row.Baseline.Mean, row.Baseline.HalfRange = eval.MeanRange(base)
	row.Genie.Mean, row.Genie.HalfRange = eval.MeanRange(gen)
	return row
}

func trainTACL(train, val []tacl.Example, mcfg model.Config) *model.Parser {
	pairs := tacl.ToPairs(train)
	valPairs := tacl.ToPairs(val)
	var lm [][]string
	for _, p := range pairs {
		lm = append(lm, p.Tgt)
	}
	return model.Train(pairs, valPairs, lm, mcfg)
}

// TACLParaphraseAccuracy reports the §6.2 quote-free paraphrase-split number
// (the paper reaches 96%).
func TACLParaphraseAccuracy(scale genie.Scale, seed int64) float64 {
	lib := thingpedia.Builtin()
	d := tacl.Build(lib, scale.SynthTarget, 3, scale.ParaphraseMax, 3, seed)
	mcfg := scale.Model
	mcfg.Seed = seed
	p := trainTACL(d.Train, d.ParaTest, mcfg)
	return tacl.Evaluate(p, d.ParaTest, lib)
}

// Print renders Fig. 9.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 9 — case studies on cheatsheet test data (program accuracy)")
	fmt.Fprintf(w, "  %-10s %14s %14s\n", "case", "Baseline", "Genie")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10s  %5.1f ± %-5.1f  %5.1f ± %-5.1f\n",
			row.Case, row.Baseline.Mean, row.Baseline.HalfRange, row.Genie.Mean, row.Genie.HalfRange)
	}
}

// LimitationResult reproduces §5.2's "Limitation of Paraphrase Tests": a
// Wang-et-al-style model (single construct and primitive template set,
// paraphrase-only training) scored three ways.
type LimitationResult struct {
	InDistribution float64 // paraphrases of programs seen in training
	UnseenCombos   float64 // paraphrases of unseen function combinations
	Realistic      float64 // cheatsheet data
}

// Limitation runs the experiment.
func Limitation(scale genie.Scale, seed int64) LimitationResult {
	lib := thingpedia.Builtin()
	// Restrict synthesis to the "basic" construct subset, mimicking the
	// original methodology's single construct template per shape.
	g := nltemplate.StandardGrammar(lib, nltemplate.Options{})
	d := genie.BuildDataWithGrammarFlag(lib, g, scale, seed, "basic")
	p := d.Train(genie.TrainOptions{Strategy: genie.StrategyParaphraseOnly, Topt: genie.CanonicalTargets, Model: scale.Model, Seed: seed})

	// In-distribution paraphrase test: held-in combinations.
	var inDist []dataset.Example
	rng := rand.New(rand.NewSource(seed + 9))
	for i := range d.Paraphrases {
		if d.HeldOutCombos[dataset.FunctionComboKey(d.Paraphrases[i].Program)] {
			continue
		}
		if inst, ok := genie.InstantiateExample(d, &d.Paraphrases[i], rng); ok {
			inDist = append(inDist, inst)
		}
		if len(inDist) >= scale.EvalN {
			break
		}
	}
	return LimitationResult{
		InDistribution: d.Evaluate(p, inDist).ProgramAccuracy(),
		UnseenCombos:   d.Evaluate(p, d.ParaTest).ProgramAccuracy(),
		Realistic:      d.Evaluate(p, d.Cheatsheet).ProgramAccuracy(),
	}
}

// Print renders the limitation experiment.
func (r LimitationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5.2 — limitation of paraphrase tests (Wang-et-al methodology)")
	fmt.Fprintf(w, "  paraphrases of trained programs:     %5.1f%% (paper: 95%%)\n", r.InDistribution)
	fmt.Fprintf(w, "  paraphrases of unseen combinations:  %5.1f%% (paper: 48%%)\n", r.UnseenCombos)
	fmt.Fprintf(w, "  realistic (cheatsheet) data:         %5.1f%% (paper: ~40%%)\n", r.Realistic)
}

// IFTTTResult reports the Table 2 cleanup-rule activity.
type IFTTTResult struct {
	Descriptions int
	RuleCounts   map[string]int
}

// IFTTTCleanup generates raw applet descriptions and applies the rules.
func IFTTTCleanup(scale genie.Scale, seed int64) IFTTTResult {
	lib := thingpedia.Builtin()
	d := genie.BuildData(lib, nltemplate.DefaultOptions, scale, seed)
	// Prefer compounds with parameter slots so every Table 2 rule has
	// material to act on.
	var compound []dataset.Example
	for _, wantSlots := range []bool{true, false} {
		for i := range d.Synth {
			if len(compound) >= scale.EvalN {
				break
			}
			if !d.Synth[i].Program.IsCompound() {
				continue
			}
			if hasSlotWord(d.Synth[i].Words) == wantSlots {
				compound = append(compound, d.Synth[i])
			}
		}
	}
	raw := ifttt.Generate(compound, seed)
	return IFTTTResult{Descriptions: len(raw), RuleCounts: ifttt.CleanupRuleCounts(raw)}
}

func hasSlotWord(words []string) bool {
	for _, w := range words {
		if len(w) > 7 && w[:7] == "__slot_" {
			return true
		}
	}
	return false
}

// Print renders Table 2 rule activity.
func (r IFTTTResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — IFTTT cleanup rules applied")
	fmt.Fprintf(w, "  descriptions: %d\n", r.Descriptions)
	for _, k := range []string{"second-person", "blank", "ui-text", "under-specified"} {
		fmt.Fprintf(w, "  %-16s %d\n", k, r.RuleCounts[k])
	}
}
