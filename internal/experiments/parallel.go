package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runJobs executes n independent jobs over a bounded worker pool; workers<=0
// means GOMAXPROCS (the same contract as synthesis.Config.Workers). Each job
// writes only to its own index of a pre-sized result slice and draws all
// randomness from its own explicitly seeded source, so results are merged in
// job order and the output is bit-identical for any worker count — the same
// determinism contract the synthesis pipeline established.
func runJobs(workers, n int, job func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
