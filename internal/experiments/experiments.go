// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5 and 6). Each function returns the same rows/series
// the paper reports; absolute numbers depend on the Scale (the substrate is
// a CPU simulator, not the authors' V100 testbed), but the shapes — who
// wins, by roughly what factor — are the reproduction target. See
// EXPERIMENTS.md for recorded paper-vs-measured values.
//
//genielint:deterministic
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/genie"
	"repro/internal/nltemplate"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
)

// Fig7Result is the training-set characteristics pie of Fig. 7.
type Fig7Result struct {
	Chars dataset.Characteristics
}

// Fig7 classifies the combined (synthesized + paraphrase) training set.
func Fig7(scale genie.Scale, seed int64) Fig7Result {
	d := genie.BuildData(thingpedia.Builtin(), nltemplate.DefaultOptions, scale, seed)
	rng := rand.New(rand.NewSource(seed))
	train := d.TrainingExamples(genie.StrategyGenie, rng)
	return Fig7Result{Chars: dataset.Classify(train)}
}

// Print writes the figure like the paper's legend.
func (r Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 7 — characteristics of the ThingTalk training set")
	f := r.Chars.Fractions()
	order := []string{"primitive", "primitive+filters", "compound", "compound+param-pass", "compound+filters"}
	for _, k := range order {
		fmt.Fprintf(w, "  %-22s %5.1f%%\n", k, f[k])
	}
	fmt.Fprintf(w, "  total examples: %d\n", r.Chars.Total)
}

// Fig8Cell is one bar of Fig. 8 (mean ± half-range over seeds).
type Fig8Cell struct {
	Mean, HalfRange float64
}

// Fig8Result holds accuracy per strategy per evaluation set.
type Fig8Result struct {
	Sets       []string
	Strategies []string
	Cells      map[string]map[string]Fig8Cell // strategy -> set -> cell
}

// Fig8 compares the three training strategies on the four evaluation sets.
// The data build depends only on baseSeed, so it is built once and shared;
// the independent (strategy, seed) training runs fan out over scale.Workers
// and are merged in job order (bit-identical for any worker count).
func Fig8(scale genie.Scale, baseSeed int64) Fig8Result {
	strategies := []genie.Strategy{genie.StrategySynthesizedOnly, genie.StrategyParaphraseOnly, genie.StrategyGenie}
	res := Fig8Result{
		Sets:       []string{"Paraphrase", "Validation", "Cheatsheet", "IFTTT"},
		Strategies: []string{"Synthesized Only", "Paraphrase Only", "Genie"},
		Cells:      map[string]map[string]Fig8Cell{},
	}
	d := genie.BuildData(thingpedia.Builtin(), nltemplate.DefaultOptions, scale, baseSeed)

	type job struct {
		si   int
		seed int64
	}
	var jobs []job
	for _, seed := range scale.Seeds {
		for si := range strategies {
			jobs = append(jobs, job{si: si, seed: seed})
		}
	}
	accs := make([][4]float64, len(jobs))
	runJobs(scale.Workers, len(jobs), func(i int) {
		j := jobs[i]
		p := d.Train(genie.TrainOptions{Strategy: strategies[j.si], Topt: genie.CanonicalTargets, Model: scale.Model, Seed: j.seed})
		accs[i] = [4]float64{
			d.Evaluate(p, d.ParaTest).ProgramAccuracy(),
			d.Evaluate(p, d.Validation).ProgramAccuracy(),
			d.Evaluate(p, d.Cheatsheet).ProgramAccuracy(),
			d.Evaluate(p, d.IFTTT).ProgramAccuracy(),
		}
	})

	perStrategy := map[string]map[string][]float64{}
	for i, j := range jobs {
		name := res.Strategies[j.si]
		if perStrategy[name] == nil {
			perStrategy[name] = map[string][]float64{}
		}
		for k, set := range res.Sets {
			perStrategy[name][set] = append(perStrategy[name][set], accs[i][k])
		}
	}
	for name, sets := range perStrategy {
		res.Cells[name] = map[string]Fig8Cell{}
		for set, vals := range sets {
			m, hr := eval.MeanRange(vals)
			res.Cells[name][set] = Fig8Cell{Mean: m, HalfRange: hr}
		}
	}
	return res
}

// Print renders the Fig. 8 bars as a table.
func (r Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 8 — program accuracy by training strategy")
	fmt.Fprintf(w, "  %-18s", "strategy")
	for _, s := range r.Sets {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	for _, name := range r.Strategies {
		fmt.Fprintf(w, "  %-18s", name)
		for _, set := range r.Sets {
			c := r.Cells[name][set]
			fmt.Fprintf(w, "  %5.1f ± %-5.1f", c.Mean, c.HalfRange)
		}
		fmt.Fprintln(w)
	}
}

// Table3Row is one ablation row.
type Table3Row struct {
	Name       string
	Paraphrase Fig8Cell
	Validation Fig8Cell
	NewProgram Fig8Cell
}

// Table3Result is the ablation study.
type Table3Result struct{ Rows []Table3Row }

// Table3 removes one feature at a time from Genie/ThingTalk.
func Table3(scale genie.Scale, baseSeed int64) Table3Result {
	d := genie.BuildData(thingpedia.Builtin(), nltemplate.DefaultOptions, scale, baseSeed)
	type cfg struct {
		name    string
		topt    genie.TargetOptions
		noLM    bool
		noParam bool
	}
	cfgs := []cfg{
		{name: "Genie", topt: genie.CanonicalTargets},
		{name: "- canonicalization", topt: genie.TargetOptions{TypeAnnotations: true, ShuffleParams: true}},
		{name: "- keyword param.", topt: genie.TargetOptions{Positional: true}},
		{name: "- type annotations", topt: genie.TargetOptions{}},
		{name: "- param. expansion", topt: genie.CanonicalTargets, noParam: true},
		{name: "- decoder LM", topt: genie.CanonicalTargets, noLM: true},
	}
	// The (ablation, seed) training runs are independent: fan them out over
	// scale.Workers and merge in job order.
	nSeeds := len(scale.Seeds)
	accs := make([][3]float64, len(cfgs)*nSeeds)
	runJobs(scale.Workers, len(accs), func(i int) {
		c := cfgs[i/nSeeds]
		seed := scale.Seeds[i%nSeeds]
		dd := d
		if c.noParam {
			copyD := *d
			copyD.Scale.Factors.ParaphraseWithString = 1
			copyD.Scale.Factors.Paraphrase = 1
			copyD.Scale.Factors.SynthesizedPrimitive = 1
			copyD.Scale.Factors.Synthesized = 1
			dd = &copyD
		}
		mcfg := scale.Model
		if c.noLM {
			mcfg.PretrainLM = false
		}
		p := dd.Train(genie.TrainOptions{Strategy: genie.StrategyGenie, Topt: c.topt, Model: mcfg, Seed: seed})
		accs[i] = [3]float64{
			dd.Evaluate(p, dd.ParaTest).ProgramAccuracy(),
			dd.Evaluate(p, dd.Validation).ProgramAccuracy(),
			dd.Evaluate(p, dd.NewProgramSubset()).ProgramAccuracy(),
		}
	})
	var rows []Table3Row
	for ci, c := range cfgs {
		var para, val, newp []float64
		for si := range scale.Seeds {
			a := accs[ci*nSeeds+si]
			para = append(para, a[0])
			val = append(val, a[1])
			newp = append(newp, a[2])
		}
		row := Table3Row{Name: c.name}
		row.Paraphrase.Mean, row.Paraphrase.HalfRange = eval.MeanRange(para)
		row.Validation.Mean, row.Validation.HalfRange = eval.MeanRange(val)
		row.NewProgram.Mean, row.NewProgram.HalfRange = eval.MeanRange(newp)
		rows = append(rows, row)
	}
	return Table3Result{Rows: rows}
}

// Print renders Table 3.
func (r Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — ablation study (program accuracy)")
	fmt.Fprintf(w, "  %-22s %14s %14s %14s\n", "model", "Paraphrase", "Validation", "New Program")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-22s  %5.1f ± %-5.1f  %5.1f ± %-5.1f  %5.1f ± %-5.1f\n",
			row.Name,
			row.Paraphrase.Mean, row.Paraphrase.HalfRange,
			row.Validation.Mean, row.Validation.HalfRange,
			row.NewProgram.Mean, row.NewProgram.HalfRange)
	}
}

// StatsResult carries the Section 5.2 data statistics.
type StatsResult struct {
	Library        thingpedia.Stats
	Synth          synthesis.Stats
	Paraphrases    int
	Discarded      int
	Novelty        dataset.NoveltyStats
	TrainExamples  int
	TrainPrograms  int
	TrainCombos    int
	VocabSynth     int
	VocabPara      int
	VocabAugmented int
}

// Stats reproduces the §5.2 dataset-scale numbers (at the given Scale).
func Stats(scale genie.Scale, seed int64) StatsResult {
	lib := thingpedia.Builtin()
	d := genie.BuildData(lib, nltemplate.DefaultOptions, scale, seed)
	rng := rand.New(rand.NewSource(seed))
	train := d.TrainingExamples(genie.StrategyGenie, rng)

	rawExamples := make([]synthesis.Example, len(d.Synth))
	for i := range d.Synth {
		rawExamples[i] = synthesis.Example{Words: d.Synth[i].Words, Program: d.Synth[i].Program, Depth: d.Synth[i].Depth}
	}
	res := StatsResult{
		Library:       lib.Stats(),
		Synth:         synthesis.Summarize(rawExamples),
		Paraphrases:   len(d.Paraphrases),
		Discarded:     d.Discarded,
		Novelty:       d.ParaNovelty,
		TrainExamples: len(train),
		TrainPrograms: dataset.DistinctPrograms(train),
		TrainCombos:   dataset.DistinctCombos(train),
		VocabSynth:    len(dataset.Vocab(d.Synth)),
		VocabPara:     len(dataset.Vocab(append(append([]dataset.Example{}, d.Synth...), d.Paraphrases...))),
	}
	res.VocabAugmented = len(dataset.Vocab(train))
	return res
}

// Print renders the statistics like §5.2's prose.
func (r StatsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5.2 — data statistics")
	fmt.Fprintf(w, "  library: %d skills, %d functions (%d queries / %d actions), %d distinct parameters\n",
		r.Library.Skills, r.Library.Functions, r.Library.Queries, r.Library.Actions, r.Library.DistinctParams)
	fmt.Fprintf(w, "  primitive templates: %d (%.1f per function)\n", r.Library.Primitives, r.Library.PerFunction)
	fmt.Fprintf(w, "  synthesized: %d sentences, %d distinct programs, %d function combinations\n",
		r.Synth.Sentences, r.Synth.DistinctPrograms, r.Synth.FunctionPairs)
	fmt.Fprintf(w, "  paraphrases: %d collected, %d discarded by quality heuristics\n", r.Paraphrases, r.Discarded)
	fmt.Fprintf(w, "  paraphrase novelty: %.0f%% new words, %.0f%% new bigrams per paraphrase (paper: 38%% / 65%%)\n",
		r.Novelty.NewWordRate, r.Novelty.NewBigramRate)
	fmt.Fprintf(w, "  training set: %d sentences, %d distinct programs, %d combinations\n",
		r.TrainExamples, r.TrainPrograms, r.TrainCombos)
	fmt.Fprintf(w, "  vocabulary growth: %d (synthesized) -> %d (+paraphrases) -> %d (+augmentation)\n",
		r.VocabSynth, r.VocabPara, r.VocabAugmented)
}

// ErrorsResult is the §5.5 error-analysis ladder.
type ErrorsResult struct {
	Report eval.Report
}

// Errors trains the Genie model and buckets its validation errors.
func Errors(scale genie.Scale, seed int64) ErrorsResult {
	d := genie.BuildData(thingpedia.Builtin(), nltemplate.DefaultOptions, scale, seed)
	p := d.Train(genie.TrainOptions{Strategy: genie.StrategyGenie, Topt: genie.CanonicalTargets, Model: scale.Model, Seed: seed})
	return ErrorsResult{Report: d.Evaluate(p, d.Validation)}
}

// Print renders the ladder like §5.5's prose.
func (r ErrorsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5.5 — error analysis on the validation set")
	fmt.Fprintf(w, "  syntactically correct and type-correct: %.0f%% (paper: 96%%)\n", r.Report.SyntaxRate())
	fmt.Fprintf(w, "  primitive-vs-compound identified:       %.0f%% (paper: 91%%)\n", r.Report.PrimCompoundRate())
	fmt.Fprintf(w, "  correct skills:                         %.0f%% (paper: 87%%)\n", r.Report.SkillRate())
	fmt.Fprintf(w, "  correct functions:                      %.0f%% (paper: 82%%)\n", r.Report.FunctionAccuracy())
	fmt.Fprintf(w, "  full program accuracy:                  %.0f%%\n", r.Report.ProgramAccuracy())
	fmt.Fprintf(w, "  parameter-value copy errors:            %.1f%% (paper: <1%%)\n", r.Report.ParamValueErrorRate())
}
