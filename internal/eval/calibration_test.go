package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// cannedScored is a ScoredDecoder with fixed greedy/beam outputs and greedy
// scores per sentence.
type cannedScored struct {
	greedy map[string][]string
	beam   map[string][]string
	score  map[string]float64
}

func (c cannedScored) ParseScored(words []string, width int) ([]string, float64) {
	k := strings.Join(words, " ")
	if width <= 1 {
		return c.greedy[k], c.score[k]
	}
	return c.beam[k], c.score[k] + 1
}

const calGold = `now => @a.b.q => notify`
const calWrong = `now => @a.b.q2 => notify`

// calSet builds a held-out set where the nGood highest-scoring examples
// decode correctly greedily and the nBad lowest-scoring ones only decode
// correctly through the beam. Scores are distinct.
func calSet(nGood, nBad int) (cannedScored, []dataset.Example) {
	dec := cannedScored{
		greedy: map[string][]string{},
		beam:   map[string][]string{},
		score:  map[string]float64{},
	}
	var examples []dataset.Example
	for i := 0; i < nGood+nBad; i++ {
		s := fmt.Sprintf("s%d", i)
		examples = append(examples, example(calGold, s))
		if i < nBad {
			dec.greedy[s] = strings.Fields(calWrong)
			dec.score[s] = -2 + float64(i)/10
		} else {
			dec.greedy[s] = strings.Fields(calGold)
			dec.score[s] = -0.5 + float64(i)/100
		}
		dec.beam[s] = strings.Fields(calGold)
	}
	return dec, examples
}

func TestFitCalibrationSeparatesByScore(t *testing.T) {
	dec, examples := calSet(7, 3)
	r := FitCalibration(dec, examples, schemas(), 4)
	if !r.Fitted {
		t.Fatalf("not fitted: %+v", r)
	}
	if r.Total != 10 || r.GreedyCorrect != 7 || r.BeamCorrect != 10 {
		t.Fatalf("ledger wrong: %+v", r)
	}
	// The 3 low-scoring failures sit under the 30% cap: escalating exactly
	// them recovers full accuracy.
	if r.Escalated != 3 || r.AdaptiveCorrect != 10 {
		t.Errorf("expected 3 escalations recovering 10 correct, got %+v", r)
	}
	// Threshold sits above every escalated score and at/below every
	// non-escalated one.
	for s, sc := range dec.score {
		wrongGreedy := strings.Join(dec.greedy[s], " ") == calWrong
		if wrongGreedy && sc >= r.Threshold {
			t.Errorf("low-confidence %s (%.2f) not under threshold %.2f", s, sc, r.Threshold)
		}
		if !wrongGreedy && sc < r.Threshold {
			t.Errorf("high-confidence %s (%.2f) under threshold %.2f", s, sc, r.Threshold)
		}
	}
	if r.AdaptiveAccuracy() != 100 || r.EscalationRate() != 30 {
		t.Errorf("rates wrong: adaptive %.1f escalation %.1f", r.AdaptiveAccuracy(), r.EscalationRate())
	}
}

func TestFitCalibrationRespectsEscalationCap(t *testing.T) {
	// Half the set would profit from the beam, but only 30% may escalate.
	dec, examples := calSet(5, 5)
	r := FitCalibration(dec, examples, schemas(), 4)
	if !r.Fitted {
		t.Fatalf("not fitted: %+v", r)
	}
	if r.Escalated > 3 {
		t.Errorf("escalated %d of 10, cap is 3", r.Escalated)
	}
	// Escalating the 3 worst recovers 3 of the 5 beam-only wins.
	if r.AdaptiveCorrect != 8 {
		t.Errorf("adaptive correct = %d, want 8: %+v", r.AdaptiveCorrect, r)
	}
}

func TestFitCalibrationDegenerateInputs(t *testing.T) {
	dec, examples := calSet(4, 1)
	if r := FitCalibration(dec, nil, schemas(), 4); r.Fitted {
		t.Error("fitted on empty set")
	}
	if r := FitCalibration(dec, examples, schemas(), 1); r.Fitted {
		t.Error("fitted with beam width 1")
	}
	// All-greedy-correct: nothing to escalate, threshold stays -Inf.
	decG, exG := calSet(6, 0)
	r := FitCalibration(decG, exG, schemas(), 4)
	if !r.Fitted || r.Escalated != 0 || !math.IsInf(r.Threshold, -1) {
		t.Errorf("all-correct set should fit a never-escalate threshold: %+v", r)
	}
	if r.AdaptiveCorrect != 6 {
		t.Errorf("adaptive correct = %d, want 6", r.AdaptiveCorrect)
	}
	if s := r.String(); !strings.Contains(s, "threshold") {
		t.Errorf("String() = %q", s)
	}
}
