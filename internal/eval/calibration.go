package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

// Confidence calibration for adaptive decoding: greedy decode is ~3x cheaper
// than the beam, and on most inputs it is already right. FitCalibration
// fits, on held-out examples, a threshold over the greedy hypothesis's
// length-normalized score such that serving can decode greedily when the
// score clears the threshold and escalate to the beam only below it —
// keeping accuracy within a hair of always-beam while routing the bulk of
// traffic through the cheap path.

// ScoredDecoder decodes with a per-parse confidence score; *model.Parser
// satisfies it (width 1 = greedy, >1 = beam).
type ScoredDecoder interface {
	ParseScored(words []string, width int) ([]string, float64)
}

// CalibrationReport is the result of fitting the confidence threshold on a
// held-out set: the threshold itself plus the accuracy/escalation ledger
// behind it.
type CalibrationReport struct {
	Total     int
	BeamWidth int
	// Threshold is the fitted cutoff: escalate to the beam when the greedy
	// score is strictly below it. Fitted is false when there was nothing to
	// fit (no examples, or beam width <= 1).
	Threshold float64
	Fitted    bool
	// Correctness of each fixed policy on the held-out set.
	GreedyCorrect int
	BeamCorrect   int
	// The adaptive policy at Threshold: its correct count and how many
	// examples it escalated.
	AdaptiveCorrect int
	Escalated       int
}

// GreedyAccuracy returns always-greedy program accuracy (percent).
func (r CalibrationReport) GreedyAccuracy() float64 { return pct(r.GreedyCorrect, r.Total) }

// BeamAccuracy returns always-beam program accuracy (percent).
func (r CalibrationReport) BeamAccuracy() float64 { return pct(r.BeamCorrect, r.Total) }

// AdaptiveAccuracy returns the adaptive policy's program accuracy (percent).
func (r CalibrationReport) AdaptiveAccuracy() float64 { return pct(r.AdaptiveCorrect, r.Total) }

// EscalationRate returns the share of held-out examples the adaptive policy
// sent to the beam (percent).
func (r CalibrationReport) EscalationRate() float64 { return pct(r.Escalated, r.Total) }

func (r CalibrationReport) String() string {
	if !r.Fitted {
		return fmt.Sprintf("calibration: not fitted (%d examples, beam %d)", r.Total, r.BeamWidth)
	}
	return fmt.Sprintf(
		"calibration: threshold %.4f | greedy %.1f%% beam%d %.1f%% adaptive %.1f%% | escalation %.1f%% (%d/%d)",
		r.Threshold, r.GreedyAccuracy(), r.BeamWidth, r.BeamAccuracy(),
		r.AdaptiveAccuracy(), r.EscalationRate(), r.Escalated, r.Total)
}

// maxEscalationShare caps how much held-out traffic the fitted threshold may
// route to the beam: at least 70% must stay on the greedy path.
const maxEscalationShare = 0.3

// FitCalibration decodes every example greedily and with a width-wide beam,
// then picks the threshold that maximizes adaptive accuracy (greedy at or
// above the threshold, beam below) subject to escalating at most 30% of the
// set; ties prefer the lower escalation rate. Examples is typically the
// held-out split the model did not train on.
func FitCalibration(dec ScoredDecoder, examples []dataset.Example, schemas thingtalk.SchemaSource, width int) CalibrationReport {
	r := CalibrationReport{Total: len(examples), BeamWidth: width, Threshold: math.Inf(-1)}
	if len(examples) == 0 || width <= 1 {
		return r
	}
	type sample struct {
		score float64
		g, b  bool
	}
	samples := make([]sample, len(examples))
	for i := range examples {
		e := &examples[i]
		gToks, gScore := dec.ParseScored(e.Words, 1)
		bToks, _ := dec.ParseScored(e.Words, width)
		samples[i] = sample{
			score: gScore,
			g:     predictionCorrect(gToks, e, schemas),
			b:     predictionCorrect(bToks, e, schemas),
		}
		if samples[i].g {
			r.GreedyCorrect++
		}
		if samples[i].b {
			r.BeamCorrect++
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].score < samples[j].score })

	// With scores ascending, cutting at index k (escalate the k lowest-
	// scoring examples) yields accuracy prefixBeam(k) + suffixGreedy(k).
	// Only cut at distinct-score boundaries so "score < threshold" escalates
	// exactly the counted prefix.
	n := len(samples)
	suffixGreedy := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixGreedy[i] = suffixGreedy[i+1]
		if samples[i].g {
			suffixGreedy[i]++
		}
	}
	maxEsc := int(maxEscalationShare * float64(n))
	bestK, bestAcc := 0, suffixGreedy[0]
	prefixBeam := 0
	for k := 1; k <= maxEsc; k++ {
		if samples[k-1].b {
			prefixBeam++
		}
		if k < n && samples[k].score == samples[k-1].score {
			continue // not a distinct-score boundary
		}
		if acc := prefixBeam + suffixGreedy[k]; acc > bestAcc {
			bestAcc, bestK = acc, k
		}
	}
	r.Fitted = true
	r.AdaptiveCorrect = bestAcc
	r.Escalated = bestK
	if bestK > 0 {
		r.Threshold = samples[bestK].score
	}
	return r
}

// predictionCorrect reports whether toks is an exact (canonical) match of
// the example's gold program or any alternative annotation — the same
// correctness judgment Report.Correct counts.
func predictionCorrect(toks []string, e *dataset.Example, schemas thingtalk.SchemaSource) bool {
	pred, err := thingtalk.ParseTokens(toks, thingtalk.ParseOptions{Schemas: schemas})
	if err != nil {
		return false
	}
	if err := thingtalk.Typecheck(pred, schemas); err != nil {
		return false
	}
	return matchesAny(thingtalk.Canonicalize(pred, schemas), e, schemas)
}
