package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

// ContextDecoder decodes a sentence conditioned on the previous turn's
// program tokens; *model.Parser implements it (ParseContext), and decoding
// with an empty context is exactly single-turn decoding.
type ContextDecoder interface {
	ParseContext(words, ctx []string) []string
}

// SessionDecoder routes one dialogue turn to a skill under a session id,
// with the decoder — not the caller — supplying the previous-turn context
// from its own session state; fleet.Registry implements it (ParseTurn over
// the per-skill session store).
type SessionDecoder interface {
	ParseTurn(skill, session string, words []string) []string
}

// TurnSample is one dialogue turn under evaluation: the utterance, its gold
// program, and the previous turn's gold program tokens as decoding context
// (empty on first turns).
type TurnSample struct {
	Words   []string
	Context []string
	Program *thingtalk.Program
	// Alt are alternative gold annotations, accepted like dataset.Example.Alt.
	Alt []*thingtalk.Program
}

// DialogueReport splits program accuracy by turn position: first turns
// decode with no context (the single-turn regime) and follow-ups decode
// conditioned on the prior program, so the gap between the two is the cost
// of contextual interpretation.
type DialogueReport struct {
	First     Report
	Followups Report
}

// FirstTurnAccuracy is program accuracy over session-opening turns.
func (r DialogueReport) FirstTurnAccuracy() float64 { return r.First.ProgramAccuracy() }

// FollowupAccuracy is program accuracy over context-conditioned turns.
func (r DialogueReport) FollowupAccuracy() float64 { return r.Followups.ProgramAccuracy() }

// Gap is first-turn minus follow-up accuracy in percentage points.
func (r DialogueReport) Gap() float64 { return r.FirstTurnAccuracy() - r.FollowupAccuracy() }

// Combined merges both buckets into one flat report.
func (r DialogueReport) Combined() Report {
	c := r.First
	c.add(r.Followups)
	return c
}

func (r *DialogueReport) score(first bool, toks []string, t *TurnSample, schemas thingtalk.SchemaSource) {
	e := dataset.Example{Words: t.Words, Program: t.Program, Alt: t.Alt}
	if first {
		r.First.score(toks, &e, schemas)
	} else {
		r.Followups.score(toks, &e, schemas)
	}
}

// EvaluateDialogue scores a contextual decoder on multi-turn sessions with
// teacher-forced context: every follow-up decodes against the gold previous
// program, so the follow-up bucket isolates contextual decoding quality from
// error propagation. Sessions fan across workers (0 = GOMAXPROCS);
// predictions are scored in session order, so the report is deterministic
// for any worker count.
func EvaluateDialogue(dec ContextDecoder, sessions [][]TurnSample, schemas thingtalk.SchemaSource, workers int) DialogueReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sessions) {
		workers = len(sessions)
	}
	preds := make([][][]string, len(sessions))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= len(sessions) {
					return
				}
				out := make([][]string, len(sessions[si]))
				for ti := range sessions[si] {
					out[ti] = dec.ParseContext(sessions[si][ti].Words, sessions[si][ti].Context)
				}
				preds[si] = out
			}
		}()
	}
	wg.Wait()
	var r DialogueReport
	for si := range sessions {
		for ti := range sessions[si] {
			r.score(ti == 0, preds[si][ti], &sessions[si][ti], schemas)
		}
	}
	return r
}

// DialogueSet is one skill's multi-turn evaluation slice: its sessions (each
// an ordered turn sequence) and the schema source they canonicalize against.
type DialogueSet struct {
	Skill    string
	Sessions [][]TurnSample
	Schemas  thingtalk.SchemaSource
}

// SkillDialogueReport pairs a skill with its per-turn report.
type SkillDialogueReport struct {
	Skill string
	DialogueReport
}

// FleetDialogueReport aggregates fleet-level multi-turn evaluation.
type FleetDialogueReport struct {
	Skills   []SkillDialogueReport
	Combined DialogueReport
}

// EvaluateFleetDialogue scores a session-routed deployment end to end: each
// session's turns decode in order under a unique session id, and the decoder
// supplies each follow-up's context from its own session state (for
// fleet.Registry, the per-skill session store fed by the previous accepted
// parse). Unlike EvaluateDialogue's teacher forcing, a wrong turn here
// poisons the stored context for the next one, so the follow-up bucket
// measures the deployed multi-turn experience including error propagation.
// Sessions fan across workers per skill; reports are deterministic for any
// worker count.
func EvaluateFleetDialogue(dec SessionDecoder, sets []DialogueSet, workers int) FleetDialogueReport {
	var out FleetDialogueReport
	for seti, set := range sets {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		w := min(workers, len(set.Sessions))
		preds := make([][][]string, len(set.Sessions))
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= len(set.Sessions) {
						return
					}
					session := fmt.Sprintf("eval-%d-%s-%d", seti, set.Skill, si)
					outp := make([][]string, len(set.Sessions[si]))
					for ti := range set.Sessions[si] {
						outp[ti] = dec.ParseTurn(set.Skill, session, set.Sessions[si][ti].Words)
					}
					preds[si] = outp
				}
			}()
		}
		wg.Wait()
		var r DialogueReport
		for si := range set.Sessions {
			for ti := range set.Sessions[si] {
				r.score(ti == 0, preds[si][ti], &set.Sessions[si][ti], set.Schemas)
			}
		}
		out.Skills = append(out.Skills, SkillDialogueReport{Skill: set.Skill, DialogueReport: r})
		out.Combined.First.add(r.First)
		out.Combined.Followups.add(r.Followups)
	}
	return out
}
