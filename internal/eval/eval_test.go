package eval

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

// canned decoder returns fixed token sequences per sentence.
type canned map[string][]string

func (c canned) Parse(words []string) []string { return c[strings.Join(words, " ")] }

// cannedFleet routes by skill name to per-skill canned decoders.
type cannedFleet map[string]canned

func (c cannedFleet) ParseSkill(skill string, words []string) []string {
	return c[skill].Parse(words)
}

func schemas() thingtalk.SchemaMap {
	m := thingtalk.SchemaMap{}
	m.Add(&thingtalk.FunctionSchema{Class: "a.b", Name: "q", Kind: thingtalk.KindQuery, List: true,
		Params: []thingtalk.ParamSpec{{Name: "x", Dir: thingtalk.DirOut, Type: thingtalk.NumberType{}},
			{Name: "text", Dir: thingtalk.DirOut, Type: thingtalk.StringType{}}}})
	m.Add(&thingtalk.FunctionSchema{Class: "a.b", Name: "q2", Kind: thingtalk.KindQuery,
		Params: []thingtalk.ParamSpec{{Name: "y", Dir: thingtalk.DirOut, Type: thingtalk.NumberType{}}}})
	m.Add(&thingtalk.FunctionSchema{Class: "c.d", Name: "act", Kind: thingtalk.KindAction,
		Params: []thingtalk.ParamSpec{{Name: "msg", Dir: thingtalk.DirInOpt, Type: thingtalk.StringType{}}}})
	return m
}

func example(src, sentence string) dataset.Example {
	p, err := thingtalk.ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return dataset.Example{Words: strings.Fields(sentence), Program: p}
}

func TestEvaluateLadder(t *testing.T) {
	sch := schemas()
	gold := `now => @a.b.q => notify`
	cases := []struct {
		name   string
		out    string
		expect func(Report) bool
	}{
		{"exact", `now => @a.b.q => notify`, func(r Report) bool { return r.Correct == 1 && r.SyntaxOK == 1 }},
		{"param order irrelevant", `now => @a.b.q => notify ;`, func(r Report) bool { return r.Correct == 1 }},
		{"syntax error", `now => => notify`, func(r Report) bool { return r.Correct == 0 && r.SyntaxOK == 0 }},
		{"type error", `now => @a.b.nosuch => notify`, func(r Report) bool { return r.SyntaxOK == 0 }},
		{"wrong function same shape", `now => @a.b.q2 => notify`, func(r Report) bool {
			return r.Correct == 0 && r.SyntaxOK == 1 && r.PrimCompoundOK == 1 && r.SkillsOK == 1 && r.FunctionsOK == 0
		}},
		{"wrong compoundness", `now => @a.b.q => @c.d.act`, func(r Report) bool {
			return r.PrimCompoundOK == 0 && r.SyntaxOK == 1
		}},
	}
	for _, c := range cases {
		dec := canned{"s": strings.Fields(c.out)}
		rep := Evaluate(dec, []dataset.Example{example(gold, "s")}, sch)
		if !c.expect(rep) {
			t.Errorf("%s: unexpected report %+v", c.name, rep)
		}
	}
}

func TestEvaluateAltAnnotations(t *testing.T) {
	sch := schemas()
	e := example(`now => @a.b.q => notify`, "s")
	alt, _ := thingtalk.ParseProgram(`now => @a.b.q2 => notify`)
	e.Alt = []*thingtalk.Program{alt}
	dec := canned{"s": strings.Fields(`now => @a.b.q2 => notify`)}
	rep := Evaluate(dec, []dataset.Example{e}, sch)
	if rep.Correct != 1 {
		t.Error("alternative annotation should be accepted")
	}
}

func TestEvaluateParamValueError(t *testing.T) {
	sch := schemas()
	e := example(`now => @a.b.q => @c.d.act param:msg = " hello world "`, "s")
	dec := canned{"s": strings.Fields(`now => @a.b.q => @c.d.act param:msg = " goodbye world "`)}
	rep := Evaluate(dec, []dataset.Example{e}, sch)
	if rep.ParamValueError != 1 || rep.Correct != 0 {
		t.Errorf("expected a parameter-value error: %+v", rep)
	}
}

// slowCanned decodes like canned but yields and sleeps first, so
// EvaluateParallel's workers genuinely overlap instead of draining the
// counter before interleaving.
type slowCanned struct{ c canned }

func (s slowCanned) Parse(words []string) []string {
	runtime.Gosched()
	time.Sleep(200 * time.Microsecond)
	return s.c.Parse(words)
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	sch := schemas()
	var examples []dataset.Example
	dec := canned{}
	outs := []string{
		`now => @a.b.q => notify`,     // exact
		`now => => notify`,            // syntax error
		`now => @a.b.q2 => notify`,    // wrong function
		`now => @a.b.q => @c.d.act`,   // wrong compoundness
		`now => @a.b.q => notify ;`,   // exact modulo trailing separator
		`monitor @a.b.q =>`,           // garbage
		`now => @a.b.q => notify`,     // exact again
		`now => @a.b.q2 => @c.d.act`,  // doubly wrong
		`now => @c.d.act`,             // different program entirely
		`now => @a.b.q param:x = > 1`, // malformed filter
	}
	for i, out := range outs {
		sentence := string(rune('a' + i))
		examples = append(examples, example(`now => @a.b.q => notify`, sentence))
		dec[sentence] = strings.Fields(out)
	}
	want := Evaluate(dec, examples, sch)
	for _, workers := range []int{0, 1, 3, 16} {
		got := EvaluateParallel(slowCanned{dec}, examples, sch, workers)
		if got != want {
			t.Errorf("EvaluateParallel(workers=%d) = %+v, Evaluate = %+v", workers, got, want)
		}
	}
}

// cannedBatch wraps canned with the batched-decoder surface, recording the
// window widths it was handed.
type cannedBatch struct {
	c       canned
	windows []int
}

func (cb *cannedBatch) ParseBatch(sentences [][]string) [][]string {
	cb.windows = append(cb.windows, len(sentences))
	out := make([][]string, len(sentences))
	for i, s := range sentences {
		out[i] = cb.c.Parse(s)
	}
	return out
}

func TestEvaluateBatchedMatchesSequential(t *testing.T) {
	sch := schemas()
	var examples []dataset.Example
	dec := canned{}
	outs := []string{
		`now => @a.b.q => notify`,
		`now => => notify`,
		`now => @a.b.q2 => notify`,
		`now => @a.b.q => @c.d.act`,
		`now => @a.b.q => notify ;`,
		`now => @a.b.q => notify`,
		`now => @c.d.act`,
	}
	for i, out := range outs {
		sentence := string(rune('a' + i))
		examples = append(examples, example(`now => @a.b.q => notify`, sentence))
		dec[sentence] = strings.Fields(out)
	}
	want := Evaluate(dec, examples, sch)
	for _, batch := range []int{0, 1, 3, 16} {
		cb := &cannedBatch{c: dec}
		got := EvaluateBatched(cb, examples, sch, batch)
		if got != want {
			t.Errorf("EvaluateBatched(batch=%d) = %+v, Evaluate = %+v", batch, got, want)
		}
		wantWindow := batch
		if batch <= 0 {
			wantWindow = 16
		}
		if wantWindow > len(examples) {
			wantWindow = len(examples)
		}
		if len(cb.windows) == 0 || cb.windows[0] != wantWindow {
			t.Errorf("EvaluateBatched(batch=%d) windows = %v, first should be %d", batch, cb.windows, wantWindow)
		}
	}
}

// TestEvaluateFleet scores a two-skill fleet: per-skill reports must match
// evaluating each skill alone, and the combined report is their sum.
func TestEvaluateFleet(t *testing.T) {
	sch := schemas()
	gold := `now => @a.b.q => notify`
	alpha := canned{
		"s1": strings.Fields(`now => @a.b.q => notify`), // correct
		"s2": strings.Fields(`now => => notify`),        // syntax error
	}
	beta := canned{
		"s1": strings.Fields(`now => @a.b.q2 => notify`), // wrong function
	}
	sets := []SkillSet{
		{Skill: "alpha", Schemas: sch, Examples: []dataset.Example{example(gold, "s1"), example(gold, "s2")}},
		{Skill: "beta", Schemas: sch, Examples: []dataset.Example{example(gold, "s1")}},
	}
	rep := EvaluateFleet(cannedFleet{"alpha": alpha, "beta": beta}, sets, 2)
	if len(rep.Skills) != 2 || rep.Skills[0].Skill != "alpha" || rep.Skills[1].Skill != "beta" {
		t.Fatalf("per-skill reports = %+v", rep.Skills)
	}
	if a := rep.Skills[0].Report; a.Total != 2 || a.Correct != 1 || a.SyntaxOK != 1 {
		t.Errorf("alpha report = %+v", a)
	}
	if b := rep.Skills[1].Report; b.Total != 1 || b.Correct != 0 || b.SyntaxOK != 1 || b.FunctionsOK != 0 {
		t.Errorf("beta report = %+v", b)
	}
	if c := rep.Combined; c.Total != 3 || c.Correct != 1 || c.SyntaxOK != 2 {
		t.Errorf("combined report = %+v", c)
	}
	// Per-skill results must equal standalone evaluation.
	want := Evaluate(alpha, sets[0].Examples, sch)
	if rep.Skills[0].Report != want {
		t.Errorf("fleet alpha report %+v != standalone %+v", rep.Skills[0].Report, want)
	}
}

func TestMeanRange(t *testing.T) {
	m, hr := MeanRange([]float64{60, 70, 65})
	if m != 65 || hr != 5 {
		t.Errorf("MeanRange = %v ± %v", m, hr)
	}
	if m, hr := MeanRange(nil); m != 0 || hr != 0 {
		t.Error("empty input should be zero")
	}
}
