// Package eval implements the paper's evaluation metrics: program accuracy
// (exact canonical match, accepting any of several valid annotations),
// function accuracy, and the Section 5.5 error ladder (syntactic/type
// correctness -> primitive-vs-compound -> correct skills -> correct
// functions -> full program -> parameter-value copy errors).
package eval

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// Decoder is anything that maps a sentence to program tokens; *model.Parser
// satisfies it.
type Decoder interface {
	Parse(words []string) []string
}

// Report aggregates evaluation results over a dataset.
type Report struct {
	Total int
	// Correct counts exact canonical program matches (program accuracy).
	Correct int
	// Ladder components (Section 5.5).
	SyntaxOK        int // parses and typechecks
	PrimCompoundOK  int // primitive-vs-compound identified correctly
	SkillsOK        int // correct set of skills
	FunctionsOK     int // correct set of functions (function accuracy)
	ParamValueError int // right shape, wrong copied parameter value
}

// ProgramAccuracy returns the headline metric as a percentage.
func (r Report) ProgramAccuracy() float64 { return pct(r.Correct, r.Total) }

// FunctionAccuracy returns the function-set accuracy percentage.
func (r Report) FunctionAccuracy() float64 { return pct(r.FunctionsOK, r.Total) }

// SyntaxRate returns the share of outputs that are syntactically correct and
// type-correct.
func (r Report) SyntaxRate() float64 { return pct(r.SyntaxOK, r.Total) }

// PrimCompoundRate returns the share with correct primitive-vs-compound
// identification.
func (r Report) PrimCompoundRate() float64 { return pct(r.PrimCompoundOK, r.Total) }

// SkillRate returns the share with the correct set of skills.
func (r Report) SkillRate() float64 { return pct(r.SkillsOK, r.Total) }

// ParamValueErrorRate returns the share of outputs whose only mistake is a
// wrongly copied parameter value.
func (r Report) ParamValueErrorRate() float64 { return pct(r.ParamValueError, r.Total) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Evaluate decodes every example and scores it.
func Evaluate(dec Decoder, examples []dataset.Example, schemas thingtalk.SchemaSource) Report {
	var r Report
	for i := range examples {
		r.score(dec.Parse(examples[i].Words), &examples[i], schemas)
	}
	return r
}

// EvaluateParallel is Evaluate with the decode fan spread over workers
// concurrent requests (0 = GOMAXPROCS). Predictions are collected by example
// index and scored in order, so the Report is identical to Evaluate's for
// any worker count. Pointing it at a serve.Batcher or serve.Client scores a
// parser through the full batched serving path: the concurrent requests are
// what lets the micro-batching loop form real batches.
func EvaluateParallel(dec Decoder, examples []dataset.Example, schemas thingtalk.SchemaSource, workers int) Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(examples) {
		workers = len(examples)
	}
	preds := make([][]string, len(examples))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(examples) {
					return
				}
				preds[i] = dec.Parse(examples[i].Words)
			}
		}()
	}
	wg.Wait()
	var r Report
	for i := range examples {
		r.score(preds[i], &examples[i], schemas)
	}
	return r
}

// BatchDecoder decodes a window of sentences in one batched call;
// *model.Parser implements it (one batched forward per decode step).
type BatchDecoder interface {
	ParseBatch(sentences [][]string) [][]string
}

// EvaluateBatched is Evaluate with decoding done in windows of batch
// sentences through the decoder's lockstep batched path (0 = 16). Unlike
// EvaluateParallel — which needs concurrent requests so a serving batcher
// can form batches — this drives the batched kernels directly, so a single
// evaluation thread still gets matmul width B. Predictions are scored in
// example order; the Report is identical to Evaluate's.
func EvaluateBatched(dec BatchDecoder, examples []dataset.Example, schemas thingtalk.SchemaSource, batch int) Report {
	if batch <= 0 {
		batch = 16
	}
	preds := make([][]string, 0, len(examples))
	window := make([][]string, 0, batch)
	for start := 0; start < len(examples); start += batch {
		end := min(start+batch, len(examples))
		window = window[:0]
		for i := start; i < end; i++ {
			window = append(window, examples[i].Words)
		}
		preds = append(preds, dec.ParseBatch(window)...)
	}
	var r Report
	for i := range examples {
		r.score(preds[i], &examples[i], schemas)
	}
	return r
}

// SkillDecoder routes a sentence to one skill's parser of a multi-skill
// fleet; fleet.Registry and serve.Client both implement it.
type SkillDecoder interface {
	ParseSkill(skill string, words []string) []string
}

// SkillSet is one skill's evaluation slice: its examples and the schema
// source (its own library) they canonicalize against.
type SkillSet struct {
	Skill    string
	Examples []dataset.Example
	Schemas  thingtalk.SchemaSource
}

// SkillReport pairs a skill with its report.
type SkillReport struct {
	Skill string
	Report
}

// FleetReport aggregates fleet-level evaluation: one report per skill plus
// the example-weighted combination.
type FleetReport struct {
	Skills   []SkillReport
	Combined Report
}

// add accumulates o into r (fleet-level aggregation).
func (r *Report) add(o Report) {
	r.Total += o.Total
	r.Correct += o.Correct
	r.SyntaxOK += o.SyntaxOK
	r.PrimCompoundOK += o.PrimCompoundOK
	r.SkillsOK += o.SkillsOK
	r.FunctionsOK += o.FunctionsOK
	r.ParamValueError += o.ParamValueError
}

// EvaluateFleet scores a multi-skill deployment: each set's examples decode
// through dec against that set's skill (concurrently, workers per skill;
// 0 = GOMAXPROCS) and score against that skill's own schemas, so one call
// measures the whole fleet the way production traffic would exercise it.
// Skills are evaluated in the given order; reports are deterministic for
// any worker count (EvaluateParallel's guarantee).
func EvaluateFleet(dec SkillDecoder, sets []SkillSet, workers int) FleetReport {
	var out FleetReport
	for _, set := range sets {
		r := EvaluateParallel(skillDecoderAdapter{dec: dec, skill: set.Skill}, set.Examples, set.Schemas, workers)
		out.Skills = append(out.Skills, SkillReport{Skill: set.Skill, Report: r})
		out.Combined.add(r)
	}
	return out
}

// skillDecoderAdapter pins a SkillDecoder to one skill, turning it into a
// plain Decoder.
type skillDecoderAdapter struct {
	dec   SkillDecoder
	skill string
}

func (a skillDecoderAdapter) Parse(words []string) []string {
	return a.dec.ParseSkill(a.skill, words)
}

// score grades one prediction into the report.
func (r *Report) score(toks []string, e *dataset.Example, schemas thingtalk.SchemaSource) {
	r.Total++
	pred, err := thingtalk.ParseTokens(toks, thingtalk.ParseOptions{Schemas: schemas})
	if err != nil {
		return
	}
	if err := thingtalk.Typecheck(pred, schemas); err != nil {
		return
	}
	r.SyntaxOK++
	pred = thingtalk.Canonicalize(pred, schemas)
	gold := thingtalk.Canonicalize(e.Program, schemas)

	if pred.IsCompound() == gold.IsCompound() {
		r.PrimCompoundOK++
	}
	if sameStringSet(pred.Skills(), gold.Skills()) {
		r.SkillsOK++
	}
	fnOK := sameStringSet(pred.Functions(), gold.Functions())
	if fnOK {
		r.FunctionsOK++
	}

	if matchesAny(pred, e, schemas) {
		r.Correct++
		return
	}
	// Wrong result: is it only a parameter-value copy error?
	if fnOK && shapeKey(pred, schemas) == shapeKey(gold, schemas) {
		r.ParamValueError++
	}
}

// matchesAny compares the prediction against the gold program and all
// alternative annotations.
func matchesAny(pred *thingtalk.Program, e *dataset.Example, schemas thingtalk.SchemaSource) bool {
	if thingtalk.SameProgram(pred, e.Program, schemas) {
		return true
	}
	for _, alt := range e.Alt {
		if thingtalk.SameProgram(pred, alt, schemas) {
			return true
		}
	}
	return false
}

// shapeKey is the canonical program with every constant value erased; two
// programs with equal shapes differ only in parameter values.
func shapeKey(p *thingtalk.Program, schemas thingtalk.SchemaSource) string {
	c := thingtalk.Canonicalize(p, schemas)
	thingpedia.WalkProgramValues(c, func(v *thingtalk.Value, _ string) error {
		if v.Kind != thingtalk.VVarRef {
			*v = thingtalk.EnumValue("value")
		}
		return nil
	})
	return strings.Join(c.Encode(thingtalk.EncodeOptions{}), " ")
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// MeanRange summarizes per-seed accuracies as mean ± half-range, the paper's
// error-bar convention (Table 3, Fig. 8, Fig. 9).
func MeanRange(values []float64) (mean, halfRange float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi := values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return sum / float64(len(values)), (hi - lo) / 2
}
