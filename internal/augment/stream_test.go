package augment

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
)

// streamSources synthesizes a small slot-marked input set for the expansion
// pipeline, marking half of it as paraphrase data so PPDB augmentation runs.
func streamSources(t testing.TB, n int) []dataset.Example {
	t.Helper()
	lib := thingpedia.Builtin()
	g := nltemplate.StandardGrammar(lib, nltemplate.DefaultOptions)
	raw := synthesis.Synthesize(g, synthesis.Config{TargetPerRule: 20, MaxDepth: 4, Seed: 9, Schemas: lib})
	if len(raw) < n {
		t.Fatalf("not enough synthesized examples: %d < %d", len(raw), n)
	}
	out := make([]dataset.Example, n)
	for i := 0; i < n; i++ {
		out[i] = dataset.Example{
			Words:   raw[i].Words,
			Program: raw[i].Program,
			Group:   dataset.GroupSynthesized,
			Depth:   raw[i].Depth,
		}
		if i%2 == 1 {
			out[i].Group = dataset.GroupParaphrase
		}
	}
	return out
}

func feed(ctx context.Context, examples []dataset.Example) <-chan dataset.Example {
	ch := make(chan dataset.Example)
	go func() {
		defer close(ch)
		for i := range examples {
			select {
			case ch <- examples[i]:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

func runExpandStream(t testing.TB, src []dataset.Example, workers int) []dataset.Example {
	t.Helper()
	ctx := context.Background()
	out := ExpandStream(ctx, feed(ctx, src), params.NewSampler(), StreamConfig{
		Factors:      ExpansionFactors{ParaphraseWithString: 3, Paraphrase: 2, SynthesizedPrimitive: 2, Synthesized: 1},
		PPDBVariants: 2,
		Seed:         5,
		Workers:      workers,
	})
	return dataset.Collect(ctx, out, 0)
}

// TestExpandStreamDeterministicAcrossWorkers asserts the expansion stage
// emits the identical example sequence for any worker count: per-example
// RNGs derive from the input index, and the collector restores input order.
func TestExpandStreamDeterministicAcrossWorkers(t *testing.T) {
	src := streamSources(t, 120)
	seq := runExpandStream(t, src, 1)
	par := runExpandStream(t, src, 4)
	if len(seq) == 0 {
		t.Fatal("expansion emitted nothing")
	}
	if len(seq) != len(par) {
		t.Fatalf("worker count changed output size: workers=1 %d vs workers=4 %d", len(seq), len(par))
	}
	for i := range seq {
		a := seq[i].Sentence() + "|" + seq[i].Program.String()
		b := par[i].Sentence() + "|" + par[i].Program.String()
		if a != b {
			t.Fatalf("output %d differs:\n workers=1: %s\n workers=4: %s", i, a, b)
		}
	}
	// Expansion must actually expand and leave no slot markers behind.
	if len(seq) <= len(src) {
		t.Errorf("expected expansion to grow the set: %d in, %d out", len(src), len(seq))
	}
	for i := range seq {
		for _, w := range seq[i].Words {
			if len(w) >= 7 && w[:7] == "__slot_" {
				t.Fatalf("unreplaced slot in %q", seq[i].Sentence())
			}
		}
	}
}

// TestExpandStreamCancellation asserts cancelling the context closes the
// output channel early.
func TestExpandStreamCancellation(t *testing.T) {
	src := streamSources(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	out := ExpandStream(ctx, feed(ctx, src), params.NewSampler(), StreamConfig{
		Factors: PaperFactors, PPDBVariants: 2, Seed: 5, Workers: 2,
	})
	for range 5 {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	timeout := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-timeout:
			t.Fatal("stream did not close after cancellation")
		}
	}
}
