package augment

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/params"
)

// Streaming parameter replacement and augmentation: ExpandStream is the
// concurrent counterpart of Expand + AugmentParaphrases. It consumes
// slot-marked examples from a channel (typically fed by
// synthesis.SynthesizeStream or a paraphrase source), fans each example out
// to a worker pool that instantiates it Factor-many times and produces PPDB
// variants, and re-emits the results on a bounded channel in input order
// with global deduplication. Every example's randomness comes from an RNG
// seeded by params.DeriveSeed(seed, stage, index), so the emitted set is
// identical for any Workers count, and the bounded channels let synthesis,
// augmentation, and parameter instantiation overlap instead of running as
// three full-materialization passes.

// StreamConfig controls an ExpandStream run.
type StreamConfig struct {
	// Factors are the per-group expansion multipliers (Section 5.2).
	Factors ExpansionFactors
	// PPDBVariants is the number of PPDB-augmented copies per instantiated
	// paraphrase example (0 disables augmentation).
	PPDBVariants int
	// Seed makes the stream deterministic; per-example RNGs derive from it.
	Seed int64
	// Workers is the number of instantiation goroutines (0 = GOMAXPROCS).
	// The emitted examples do not depend on the worker count.
	Workers int
	// Buffer is the capacity of the internal and output channels
	// (0 = DefaultStreamBuffer).
	Buffer int
}

// DefaultStreamBuffer is the bounded-channel capacity used when
// StreamConfig.Buffer is zero.
const DefaultStreamBuffer = 128

// ExpandStream instantiates each incoming example Factor-many times with
// independent parameter draws (plus PPDB variants for paraphrase examples),
// deduplicates globally, and emits training-ready examples in input order.
// The output channel closes when the input closes or ctx is cancelled.
func ExpandStream(ctx context.Context, in <-chan dataset.Example, sampler *params.Sampler, cfg StreamConfig) <-chan dataset.Example {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	out := make(chan dataset.Example, buffer)

	type job struct {
		idx int
		e   dataset.Example
	}
	type batch struct {
		idx      int
		examples []dataset.Example
	}

	jobs := make(chan job, buffer)
	batches := make(chan batch, buffer)

	// Dispatcher: index the input stream. Both the receive and the send
	// select on ctx so cancellation closes the output channel even when
	// the producer goes idle without closing in.
	go func() {
		defer close(jobs)
		idx := 0
		for {
			var e dataset.Example
			var ok bool
			select {
			case e, ok = <-in:
				if !ok {
					return
				}
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- job{idx: idx, e: e}:
				idx++
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: expand one example per job with its own derived RNG.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				b := batch{idx: j.idx, examples: expandOne(&j.e, j.idx, sampler, cfg)}
				select {
				case batches <- b:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(batches)
	}()

	// Collector: restore input order, deduplicate globally, emit.
	go func() {
		defer close(out)
		pending := map[int][]dataset.Example{}
		seen := map[string]bool{}
		next := 0
		for b := range batches {
			pending[b.idx] = b.examples
			for {
				examples, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for i := range examples {
					key := examples[i].Sentence() + "|" + examples[i].Program.String()
					if seen[key] {
						continue
					}
					seen[key] = true
					select {
					case out <- examples[i]:
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out
}

// expandOne instantiates one slot-marked example Factor-many times and
// attaches PPDB variants of instantiated paraphrases; duplicates within the
// example are dropped here, cross-example duplicates at the collector. The
// RNG derives from the example's position in the input stream, so results
// are independent of worker scheduling.
func expandOne(e *dataset.Example, idx int, sampler *params.Sampler, cfg StreamConfig) []dataset.Example {
	rng := rand.New(rand.NewSource(params.DeriveSeed(cfg.Seed, "expand", idx)))
	n := cfg.Factors.Factor(e)
	out := make([]dataset.Example, 0, n)
	local := map[string]bool{}
	for k := 0; k < n; k++ {
		inst, err := Instantiate(e, sampler, rng)
		if err != nil {
			continue
		}
		key := inst.Sentence() + "|" + inst.Program.String()
		if local[key] {
			continue
		}
		local[key] = true
		out = append(out, inst)
		if cfg.PPDBVariants > 0 && inst.Group == dataset.GroupParaphrase {
			for _, v := range PPDBVariants(&inst, cfg.PPDBVariants, rng) {
				vkey := v.Sentence() + "|" + v.Program.String()
				if local[vkey] {
					continue
				}
				local[vkey] = true
				out = append(out, v)
			}
		}
	}
	return out
}
