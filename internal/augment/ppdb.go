package augment

import (
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// PPDB-style augmentation (Section 3.3): meaning-preserving lexical
// substitutions applied to paraphrase data. The table below plays the role
// of the Paraphrase Database; substitutions never touch placeholders or
// parameter values, so the program stays valid.

var ppdbTable = map[string][]string{
	"get":      {"fetch", "retrieve", "grab", "pull up"},
	"show":     {"display", "present"},
	"tell":     {"inform", "let"},
	"send":     {"dispatch", "shoot"},
	"post":     {"publish", "put up"},
	"picture":  {"photo", "image", "pic"},
	"photo":    {"picture", "pic"},
	"message":  {"note", "text"},
	"when":     {"whenever", "every time", "as soon as"},
	"new":      {"fresh", "latest"},
	"latest":   {"newest", "most recent"},
	"every":    {"each"},
	"notify":   {"ping", "alert"},
	"me":       {},
	"make":     {"create"},
	"create":   {"make", "set up"},
	"delete":   {"remove", "erase"},
	"remove":   {"delete", "take off"},
	"find":     {"locate", "look for", "search for"},
	"search":   {"look"},
	"start":    {"begin", "kick off"},
	"stop":     {"halt", "end"},
	"turn":     {"switch", "flip"},
	"play":     {"put on", "start playing"},
	"add":      {"append", "put"},
	"check":    {"look at", "inspect"},
	"change":   {"modify", "alter"},
	"changes":  {"is different", "updates"},
	"big":      {"large", "huge"},
	"bigger":   {"larger"},
	"small":    {"little", "tiny"},
	"quick":    {"fast", "speedy"},
	"funny":    {"hilarious", "amusing"},
	"house":    {"home"},
	"folder":   {"directory"},
	"file":     {"document"},
	"song":     {"track", "tune"},
	"music":    {"tunes", "audio"},
	"weather":  {"forecast"},
	"articles": {"stories", "pieces"},
	"posts":    {"updates", "entries"},
	"emails":   {"mail", "messages"},
	"car":      {"ride", "vehicle"},
	"want":     {"need", "would like"},
	"about":    {"regarding", "on"},
	"below":    {"under", "beneath"},
	"above":    {"over", "beyond"},
	"before":   {"prior to"},
	"after":    {"following"},
	"receive":  {"get"},
	"buy":      {"purchase"},
	"morning":  {"am"},
	"evening":  {"night"},
}

// PPDBVariants produces up to max augmented copies of an example, each
// substituting one or two table words; the original is not included.
func PPDBVariants(e *dataset.Example, maxVariants int, rng *rand.Rand) []dataset.Example {
	// Find substitutable positions.
	type sub struct {
		pos     int
		choices []string
	}
	var subs []sub
	for i, w := range e.Words {
		if strings.HasPrefix(w, "__slot_") || isPlaceholderToken(w) {
			continue
		}
		if choices := ppdbTable[w]; len(choices) > 0 {
			subs = append(subs, sub{pos: i, choices: choices})
		}
	}
	if len(subs) == 0 {
		return nil
	}
	var out []dataset.Example
	seen := map[string]bool{e.Sentence(): true}
	attempts := maxVariants * 3
	for a := 0; a < attempts && len(out) < maxVariants; a++ {
		v := e.Clone()
		n := 1 + rng.Intn(2)
		for k := 0; k < n; k++ {
			s := subs[rng.Intn(len(subs))]
			repl := s.choices[rng.Intn(len(s.choices))]
			words := append([]string(nil), v.Words[:s.pos]...)
			words = append(words, strings.Fields(repl)...)
			words = append(words, v.Words[s.pos+1:]...)
			if len(strings.Fields(repl)) != 1 {
				// Multi-word replacement shifts positions; apply only one.
				v.Words = words
				break
			}
			v.Words = words
		}
		key := v.Sentence()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, v)
	}
	return out
}

func isPlaceholderToken(w string) bool {
	i := strings.LastIndexByte(w, '_')
	if i <= 0 || i == len(w)-1 {
		return false
	}
	switch w[:i] {
	case "NUMBER", "DATE", "TIME", "LOCATION", "CURRENCY", "DURATION":
		for _, c := range w[i+1:] {
			if c < '0' || c > '9' {
				return false
			}
		}
		return true
	}
	return false
}

// AugmentParaphrases applies PPDB augmentation to every paraphrase example
// in the list, returning the originals plus variants.
func AugmentParaphrases(examples []dataset.Example, variantsPer int, rng *rand.Rand) []dataset.Example {
	out := make([]dataset.Example, 0, len(examples)*2)
	for i := range examples {
		out = append(out, examples[i])
		if examples[i].Group != dataset.GroupParaphrase {
			continue
		}
		out = append(out, PPDBVariants(&examples[i], variantsPer, rng)...)
	}
	return out
}
