// Package augment implements Genie's parameter replacement and data
// augmentation (Section 3.3): typed slots left by the synthesizer are
// instantiated from the parameter-value datasets with per-group expansion
// factors, number-like arguments are normalized into indexed placeholders
// (NUMBER_0, DATE_1, ...) exactly as the rule-based argument identifier
// would produce, and paraphrases receive PPDB-style lexical augmentation.
//
// Two APIs expose the expansion: Expand and AugmentParaphrases materialize
// slices with a caller-supplied RNG, while ExpandStream (see stream.go) is
// their concurrent bounded-channel counterpart — a StreamConfig.Workers
// worker pool (0 = GOMAXPROCS) instantiates examples as they arrive from an
// upstream stage such as synthesis.SynthesizeStream, with per-example RNGs
// derived from StreamConfig.Seed so the output is identical for any worker
// count.
//
//genielint:deterministic
package augment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/params"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// Instantiate replaces every parameter slot of the example with a concrete
// value drawn from the sampler, producing a training-ready example. The
// input example is not modified.
func Instantiate(e *dataset.Example, sampler *params.Sampler, rng *rand.Rand) (dataset.Example, error) {
	out := e.Clone()
	// Collect slot metadata from the program.
	type slotInfo struct {
		t     thingtalk.Type
		param string
	}
	slots := map[int]slotInfo{}
	err := thingpedia.WalkProgramValues(out.Program, func(v *thingtalk.Value, param string) error {
		if v.Kind == thingtalk.VSlot {
			if v.SlotType == nil {
				return fmt.Errorf("augment: slot %d has no type", v.SlotID)
			}
			slots[v.SlotID] = slotInfo{t: v.SlotType, param: v.SlotParam}
		}
		return nil
	})
	if err != nil {
		return dataset.Example{}, err
	}

	// Draw a value per slot and assign placeholder indexes in sentence
	// order.
	drawn := map[int]params.Sample{}
	counters := map[string]int{}
	indexed := map[int]params.Sample{}
	var words []string
	for _, w := range out.Words {
		id, ok := slotID(w)
		if !ok {
			words = append(words, w)
			continue
		}
		info, ok := slots[id]
		if !ok {
			return dataset.Example{}, fmt.Errorf("augment: sentence slot %s not in program", w)
		}
		sample, ok := indexed[id]
		if !ok {
			raw, seen := drawn[id]
			if !seen {
				raw = sampler.Draw(rng, info.t, info.param)
				drawn[id] = raw
			}
			sample = indexPlaceholders(raw, counters)
			indexed[id] = sample
		}
		words = append(words, sample.Words...)
	}
	out.Words = words

	// Rewrite the program's slots.
	err = thingpedia.WalkProgramValues(out.Program, func(v *thingtalk.Value, param string) error {
		if v.Kind != thingtalk.VSlot {
			return nil
		}
		sample, ok := indexed[v.SlotID]
		if !ok {
			return fmt.Errorf("augment: program slot %d missing from sentence", v.SlotID)
		}
		*v = sample.Value
		return nil
	})
	if err != nil {
		return dataset.Example{}, err
	}
	return out, nil
}

// indexPlaceholders assigns NUMBER_k-style indexes to a drawn sample.
func indexPlaceholders(s params.Sample, counters map[string]int) params.Sample {
	out := params.Sample{Value: cloneVal(s.Value)}
	switch {
	case out.Value.Kind == thingtalk.VPlaceholder && !strings.Contains(out.Value.Name, "_"):
		prefix := out.Value.Name
		tok := fmt.Sprintf("%s_%d", prefix, counters[prefix])
		counters[prefix]++
		out.Value.Name = tok
		out.Words = []string{tok}
	case out.Value.Kind == thingtalk.VMeasure:
		tok := fmt.Sprintf("NUMBER_%d", counters["NUMBER"])
		counters["NUMBER"]++
		for i := range out.Value.Measures {
			if out.Value.Measures[i].Placeholder != "" {
				out.Value.Measures[i].Placeholder = tok
			}
		}
		out.Words = make([]string, len(s.Words))
		copy(out.Words, s.Words)
		for i, w := range out.Words {
			if w == "NUMBER_?" {
				out.Words[i] = tok
			}
		}
	default:
		out.Words = append([]string(nil), s.Words...)
	}
	return out
}

func cloneVal(v thingtalk.Value) thingtalk.Value {
	c := v
	c.Words = append([]string(nil), v.Words...)
	c.Measures = append([]thingtalk.MeasureTerm(nil), v.Measures...)
	return c
}

func slotID(w string) (int, bool) {
	if !strings.HasPrefix(w, "__slot_") {
		return 0, false
	}
	n := 0
	for _, c := range w[len("__slot_"):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ExpansionFactors are the per-group parameter-expansion multipliers of
// Section 5.2: "Paraphrases with string parameters are expanded 30 times,
// other paraphrases 10 times, synthesized primitive commands 4 times, and
// other synthesized sentences only once."
type ExpansionFactors struct {
	ParaphraseWithString int
	Paraphrase           int
	SynthesizedPrimitive int
	Synthesized          int
}

// PaperFactors mirrors Section 5.2 (scaled by the pipeline's Scale knob at
// run time).
var PaperFactors = ExpansionFactors{
	ParaphraseWithString: 30,
	Paraphrase:           10,
	SynthesizedPrimitive: 4,
	Synthesized:          1,
}

// Factor returns the multiplier for an example.
func (f ExpansionFactors) Factor(e *dataset.Example) int {
	hasString := exampleHasStringSlot(e)
	if e.Group == dataset.GroupParaphrase {
		if hasString {
			return f.ParaphraseWithString
		}
		return f.Paraphrase
	}
	if !e.Program.IsCompound() {
		return f.SynthesizedPrimitive
	}
	return f.Synthesized
}

func exampleHasStringSlot(e *dataset.Example) bool {
	has := false
	thingpedia.WalkProgramValues(e.Program, func(v *thingtalk.Value, _ string) error {
		if v.Kind == thingtalk.VSlot && v.SlotType != nil && thingtalk.IsStringLike(v.SlotType) {
			has = true
		}
		return nil
	})
	return has
}

// Expand instantiates each example factor-many times with independent
// parameter draws, deduplicating identical results.
func Expand(examples []dataset.Example, factors ExpansionFactors, sampler *params.Sampler, rng *rand.Rand) []dataset.Example {
	var out []dataset.Example
	seen := map[string]bool{}
	for i := range examples {
		e := &examples[i]
		n := factors.Factor(e)
		for k := 0; k < n; k++ {
			inst, err := Instantiate(e, sampler, rng)
			if err != nil {
				continue
			}
			key := inst.Sentence() + "|" + inst.Program.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, inst)
		}
	}
	return out
}

// NormalizeSentence performs the rule-based argument identification of
// Section 2.1 on raw user input: literal numbers become indexed NUMBER_k
// tokens (repeated mentions of the same literal share an index), and
// currency amounts ($5) become CURRENCY_k. It returns the normalized
// sentence and the mapping from placeholder to surface form.
func NormalizeSentence(words []string) ([]string, map[string]string) {
	out := make([]string, 0, len(words))
	mapping := map[string]string{}
	assigned := map[string]string{}
	counters := map[string]int{}
	normalize := func(prefix, literal string) string {
		if tok, ok := assigned[prefix+"|"+literal]; ok {
			return tok
		}
		tok := fmt.Sprintf("%s_%d", prefix, counters[prefix])
		counters[prefix]++
		assigned[prefix+"|"+literal] = tok
		mapping[tok] = literal
		return tok
	}
	for _, w := range words {
		switch {
		case isNumericWord(w):
			out = append(out, normalize("NUMBER", w))
		case len(w) > 1 && w[0] == '$' && isNumericWord(w[1:]):
			out = append(out, normalize("CURRENCY", w[1:]))
		default:
			out = append(out, w)
		}
	}
	return out, mapping
}

func isNumericWord(w string) bool {
	if w == "" {
		return false
	}
	dot := false
	for i, c := range w {
		if c == '.' && !dot && i > 0 {
			dot = true
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
