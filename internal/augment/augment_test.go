package augment

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/params"
	"repro/internal/thingtalk"
)

func slottedExample() dataset.Example {
	prog := &thingtalk.Program{
		Stream: thingtalk.Now(),
		Query: thingtalk.Invoke("com.thecatapi", "get",
			thingtalk.In("count", thingtalk.SlotValue(thingtalk.NumberType{}, 1))),
		Action: &thingtalk.Action{Invocation: &thingtalk.Invocation{
			Class: "com.twitter", Function: "post",
			In: []thingtalk.InputParam{{Name: "status", Value: func() thingtalk.Value {
				v := thingtalk.SlotValue(thingtalk.StringType{}, 2)
				v.SlotParam = "status"
				return v
			}()}},
		}},
	}
	prog.Query.Invocation.In[0].Value.SlotParam = "count"
	return dataset.Example{
		Words:   []string{"get", "__slot_1", "cats", "and", "tweet", "__slot_2"},
		Program: prog,
		Group:   dataset.GroupSynthesized,
	}
}

func TestInstantiateReplacesSlots(t *testing.T) {
	e := slottedExample()
	inst, err := Instantiate(&e, params.NewSampler(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := inst.Sentence()
	if strings.Contains(s, "__slot_") {
		t.Fatalf("slots left in sentence: %s", s)
	}
	if !strings.Contains(s, "NUMBER_0") {
		t.Errorf("number should normalize to NUMBER_0: %s", s)
	}
	p := inst.Program.String()
	if strings.Contains(p, "__slot_") {
		t.Fatalf("slots left in program: %s", p)
	}
	if !strings.Contains(p, "NUMBER_0") {
		t.Errorf("program should carry NUMBER_0: %s", p)
	}
	// The string parameter's words must appear in both sentence and program.
	var status []string
	for _, ip := range inst.Program.Action.Invocation.In {
		status = ip.Value.Words
	}
	if len(status) == 0 || !strings.Contains(s, strings.Join(status, " ")) {
		t.Errorf("copied string mismatch: sentence=%q value=%v", s, status)
	}
	// Original untouched.
	if !strings.Contains(e.Sentence(), "__slot_1") {
		t.Error("Instantiate mutated its input")
	}
}

func TestInstantiateDeterministicPerSeed(t *testing.T) {
	e := slottedExample()
	a, _ := Instantiate(&e, params.NewSampler(), rand.New(rand.NewSource(5)))
	b, _ := Instantiate(&e, params.NewSampler(), rand.New(rand.NewSource(5)))
	if a.Sentence() != b.Sentence() {
		t.Error("same seed should give same instantiation")
	}
}

func TestExpandFactors(t *testing.T) {
	e := slottedExample()
	out := Expand([]dataset.Example{e}, ExpansionFactors{SynthesizedPrimitive: 5, Synthesized: 1}, params.NewSampler(), rand.New(rand.NewSource(2)))
	// The example is compound (two functions) so factor Synthesized=1... it
	// has two functions, so factor 1 applies.
	if len(out) != 1 {
		t.Fatalf("compound synthesized should expand once, got %d", len(out))
	}
	// Expansion multiplies only when values can differ; numbers normalize
	// to NUMBER_0, so use the string-valued action as the primitive.
	prim := e.Clone()
	prim.Program.Query = nil
	prim.Words = []string{"tweet", "__slot_2"}
	out2 := Expand([]dataset.Example{prim}, ExpansionFactors{SynthesizedPrimitive: 5, Synthesized: 1}, params.NewSampler(), rand.New(rand.NewSource(3)))
	if len(out2) < 3 {
		t.Fatalf("primitive should expand several times, got %d", len(out2))
	}
}

func TestPPDBVariantsPreserveSlotsAndProgram(t *testing.T) {
	e := dataset.Example{
		Words:   []string{"get", "a", "picture", "of", "NUMBER_0", "cats"},
		Program: &thingtalk.Program{Stream: thingtalk.Now(), Query: thingtalk.Invoke("com.thecatapi", "get"), Action: thingtalk.Notify()},
		Group:   dataset.GroupParaphrase,
	}
	vars := PPDBVariants(&e, 3, rand.New(rand.NewSource(4)))
	if len(vars) == 0 {
		t.Fatal("no PPDB variants")
	}
	for _, v := range vars {
		if v.Sentence() == e.Sentence() {
			t.Error("variant identical to original")
		}
		if !strings.Contains(v.Sentence(), "NUMBER_0") {
			t.Error("placeholder destroyed by PPDB")
		}
		if v.Program.String() != e.Program.String() {
			t.Error("PPDB changed the program")
		}
	}
}

func TestNormalizeSentence(t *testing.T) {
	words := strings.Fields("set the volume to 11 and the other volume to 11 then 42 dollars $5")
	norm, mapping := NormalizeSentence(words)
	s := strings.Join(norm, " ")
	if !strings.Contains(s, "NUMBER_0") || !strings.Contains(s, "NUMBER_1") {
		t.Fatalf("numbers not normalized: %s", s)
	}
	if strings.Count(s, "NUMBER_0") != 2 {
		t.Errorf("repeated literal should reuse its index: %s", s)
	}
	if !strings.Contains(s, "CURRENCY_0") {
		t.Errorf("currency not normalized: %s", s)
	}
	if mapping["NUMBER_0"] != "11" || mapping["NUMBER_1"] != "42" {
		t.Errorf("mapping wrong: %v", mapping)
	}
}
