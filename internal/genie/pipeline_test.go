package genie

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
)

func collectPipeline(t *testing.T, workers int) []dataset.Example {
	t.Helper()
	ctx := context.Background()
	lib := thingpedia.Builtin()
	out := dataset.Collect(ctx, PipelineStream(ctx, lib, nltemplate.DefaultOptions, Unit, 1, workers), 0)
	if len(out) == 0 {
		t.Fatal("pipeline emitted nothing")
	}
	return out
}

// TestPipelineStreamDeterministicAcrossWorkers asserts the full streaming
// pipeline (synthesis → paraphrase simulation → PPDB → instantiation) emits
// the identical example sequence for any worker count.
func TestPipelineStreamDeterministicAcrossWorkers(t *testing.T) {
	seq := collectPipeline(t, 1)
	par := collectPipeline(t, 4)
	if len(seq) != len(par) {
		t.Fatalf("worker count changed output size: workers=1 %d vs workers=4 %d", len(seq), len(par))
	}
	paraphrases := 0
	for i := range seq {
		a := seq[i].Sentence() + "|" + seq[i].Program.String()
		b := par[i].Sentence() + "|" + par[i].Program.String()
		if a != b {
			t.Fatalf("output %d differs:\n workers=1: %s\n workers=4: %s", i, a, b)
		}
		if seq[i].Group == dataset.GroupParaphrase {
			paraphrases++
		}
	}
	// The paraphrase-simulation stage must contribute (otherwise PPDB
	// augmentation downstream is dead).
	if paraphrases == 0 {
		t.Error("pipeline emitted no paraphrase examples")
	}
}

// TestPipelineStreamCancellation asserts cancelling the context closes the
// stream promptly instead of leaking the stage goroutines.
func TestPipelineStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lib := thingpedia.Builtin()
	out := PipelineStream(ctx, lib, nltemplate.DefaultOptions, Unit, 1, 2)
	for range 5 {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	timeout := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-timeout:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

// TestTrainingStreamDeterministicAcrossWorkers asserts the streaming
// training-set builder matches itself across worker counts and draws from
// the same sources as the materializing path (no held-out combinations).
func TestTrainingStreamDeterministicAcrossWorkers(t *testing.T) {
	lib := thingpedia.Builtin()
	d := BuildData(lib, nltemplate.DefaultOptions, Unit, 1)
	ctx := context.Background()
	seq := dataset.Collect(ctx, d.TrainingStream(ctx, StrategyGenie, 7, 1), 0)
	par := dataset.Collect(ctx, d.TrainingStream(ctx, StrategyGenie, 7, 4), 0)
	if len(seq) == 0 {
		t.Fatal("training stream emitted nothing")
	}
	if len(seq) != len(par) {
		t.Fatalf("worker count changed output size: workers=1 %d vs workers=4 %d", len(seq), len(par))
	}
	for i := range seq {
		a := seq[i].Sentence() + "|" + seq[i].Program.String()
		b := par[i].Sentence() + "|" + par[i].Program.String()
		if a != b {
			t.Fatalf("output %d differs:\n workers=1: %s\n workers=4: %s", i, a, b)
		}
	}
	for i := range seq {
		if d.HeldOutCombos[dataset.FunctionComboKey(seq[i].Program)] {
			t.Fatalf("held-out combination leaked into training stream: %s", seq[i].Program)
		}
	}
}
