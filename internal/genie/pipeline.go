package genie

import (
	"context"
	"math/rand"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/paraphrase"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
)

// Streaming pipeline: the concurrent, bounded-channel counterpart of the
// materializing BuildData + TrainingExamples path. Synthesis waves,
// paraphrase simulation, PPDB augmentation and parameter instantiation run
// as overlapping stages connected by bounded channels, so the first
// training-ready examples are available while deep derivations are still
// being sampled. All stages seed their RNGs with params.DeriveSeed, so
// output is identical for any worker count.

// pipelineBuffer is the capacity of the channels linking pipeline stages.
const pipelineBuffer = 128

// PipelineStream runs synthesis, paraphrase simulation, and parameter
// expansion as an overlapping streaming pipeline and emits instantiated,
// training-ready examples: each synthesized example flows through, up to
// Scale.ParaphraseMax of them also spawn simulated crowd paraphrases
// (which receive PPDB augmentation downstream), and every example is
// instantiated Factor-many times by the expansion worker pool. The channel
// closes when the pipeline drains or ctx is cancelled; a consumer that
// stops early must cancel ctx to release the upstream stages. workers <= 0
// uses GOMAXPROCS for every stage.
func PipelineStream(ctx context.Context, lib *thingpedia.Library, gopt nltemplate.Options, scale Scale, seed int64, workers int) <-chan dataset.Example {
	g := nltemplate.StandardGrammar(lib, gopt)
	synth := synthesis.SynthesizeStream(ctx, g, synthesis.Config{
		TargetPerRule: scale.SynthTarget,
		MaxDepth:      scale.MaxDepth,
		Seed:          seed,
		Schemas:       lib,
		Workers:       workers,
	})
	in := make(chan dataset.Example, pipelineBuffer)
	go func() {
		defer close(in)
		sent := 0
		idx := 0
		emit := func(e dataset.Example) bool {
			select {
			case in <- e:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for e := range synth {
			ex := dataset.Example{
				Words:   e.Words,
				Program: e.Program,
				Group:   dataset.GroupSynthesized,
				Depth:   e.Depth,
			}
			if !emit(ex) {
				return
			}
			// Streaming approximation of SelectForParaphrase + Simulate:
			// unlike the materializing path it cannot shuffle the full
			// synthesized set, so it admits the first ParaphraseMax
			// eligible sentences in stream order. Each selected example
			// gets a per-example crowd batch whose seed derives from the
			// example index, so the paraphrases are deterministic and
			// scheduling-independent.
			if sent < scale.ParaphraseMax && paraphraseEligible(&ex, lib, params.DeriveSeed(seed, "paraselect", idx)) {
				sent++
				res := paraphrase.Simulate([]dataset.Example{ex}, paraphrase.Config{
					Seed: params.DeriveSeed(seed, "paraphrase", idx),
				})
				for i := range res.Paraphrases {
					if !emit(res.Paraphrases[i]) {
						return
					}
				}
			}
			idx++
		}
	}()
	return augment.ExpandStream(ctx, in, params.NewSampler(), augment.StreamConfig{
		Factors:      scale.Factors,
		PPDBVariants: scale.PPDBVariants,
		Seed:         seed,
		Workers:      workers,
		Buffer:       pipelineBuffer,
	})
}

// paraphraseEligible approximates SelectForParaphrase's stratification as a
// per-example predicate: every primitive is worth paraphrasing, compounds
// involving at least one easy-to-understand skill always qualify (Section
// 3.2 — combining easy functions with difficult ones maximizes paraphrase
// success), and hard compounds get the same ~10% share the materializing
// selector budgets for them, decided by a deterministic per-example seed.
func paraphraseEligible(e *dataset.Example, lib *thingpedia.Library, seed int64) bool {
	if !e.Program.IsCompound() {
		return true
	}
	for _, skill := range e.Program.Skills() {
		if c, ok := lib.Class(skill); ok && c.Easy {
			return true
		}
	}
	return rand.New(rand.NewSource(seed)).Float64() < 0.1
}

// TrainingStream streams a strategy's training set through the concurrent
// expansion pipeline: the strategy's slot-marked sources (synthesized
// and/or paraphrase data, minus held-out combinations, exactly as
// TrainingExamples selects them) flow through parameter instantiation and
// PPDB augmentation on a worker pool. Unlike TrainingExamples it does not
// shuffle or cap — collect with dataset.Collect and shuffle afterwards if
// the consumer needs either, and cancel ctx when stopping before the
// stream drains.
func (d *Data) TrainingStream(ctx context.Context, s Strategy, seed int64, workers int) <-chan dataset.Example {
	sources, factors, ppdb := d.strategySources(s)
	in := make(chan dataset.Example, pipelineBuffer)
	go func() {
		defer close(in)
		for i := range sources {
			select {
			case in <- sources[i]:
			case <-ctx.Done():
				return
			}
		}
	}()
	return augment.ExpandStream(ctx, in, d.sampler, augment.StreamConfig{
		Factors:      factors,
		PPDBVariants: ppdb,
		Seed:         seed,
		Workers:      workers,
		Buffer:       pipelineBuffer,
	})
}
