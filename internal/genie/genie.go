// Package genie orchestrates the full pipeline of Fig. 2: template-driven
// synthesis, (simulated) crowdsourced paraphrasing, parameter replacement
// and augmentation, ThingTalk-LM pretraining, parser training, and
// evaluation on paraphrase and realistic data. It is the programmatic API
// behind cmd/genie, the examples, and the experiment harness.
package genie

import (
	"math/rand"
	"sort"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/evaldata"
	"repro/internal/ifttt"
	"repro/internal/model"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/paraphrase"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
)

// Scale bundles every size knob of the pipeline. The paper runs at
// 100,000 samples per rule and 3.6M training sentences on a V100; the
// presets below trade size for CPU time while preserving the pipeline
// shape.
type Scale struct {
	Name          string
	SynthTarget   int // synthesis samples per rule at depth 2
	MaxDepth      int
	ParaphraseMax int // synthesized sentences sent to (simulated) workers
	Factors       augment.ExpansionFactors
	PPDBVariants  int
	TrainCap      int // cap on instantiated training examples
	EvalN         int // examples per evaluation set
	HeldOutFrac   float64
	Model         model.Config
	Seeds         []int64
	// Workers bounds the experiment harness's concurrent training runs: the
	// independent (strategy, seed) jobs of Fig8/Table3/Fig9 fan out over a
	// pool of this size (0 = GOMAXPROCS, mirroring synthesis.Config.Workers).
	// Results are merged in job order, so output is bit-identical for any
	// worker count.
	Workers int
}

// Unit is the test-suite scale: seconds per trained model.
var Unit = Scale{
	Name: "unit", SynthTarget: 24, MaxDepth: 4, ParaphraseMax: 150,
	Factors:      augment.ExpansionFactors{ParaphraseWithString: 3, Paraphrase: 2, SynthesizedPrimitive: 2, Synthesized: 1},
	PPDBVariants: 1, TrainCap: 1500, EvalN: 60, HeldOutFrac: 0.3,
	Model: model.Config{
		EmbedDim: 32, HiddenDim: 48, LR: 5e-3, Dropout: 0.05, Epochs: 6,
		EvalEvery: 100000, Patience: 0, PointerGen: true, PretrainLM: true,
		LMSteps: 300, MaxDecodeLen: 48, MinVocabCount: 4,
	},
	Seeds: []int64{1},
}

// Small is the benchmark scale: about a minute per trained model.
var Small = Scale{
	Name: "small", SynthTarget: 60, MaxDepth: 5, ParaphraseMax: 400,
	Factors:      augment.ExpansionFactors{ParaphraseWithString: 6, Paraphrase: 3, SynthesizedPrimitive: 2, Synthesized: 1},
	PPDBVariants: 1, TrainCap: 4000, EvalN: 150, HeldOutFrac: 0.3,
	Model: model.Config{
		EmbedDim: 40, HiddenDim: 56, LR: 3e-3, Dropout: 0.1, Epochs: 3,
		EvalEvery: 100000, Patience: 0, PointerGen: true, PretrainLM: true,
		LMSteps: 1000, MaxDecodeLen: 56, MinVocabCount: 3,
	},
	Seeds: []int64{1, 2, 3},
}

// Full is the reported-experiment scale (tens of minutes per model on one
// CPU).
var Full = Scale{
	Name: "full", SynthTarget: 200, MaxDepth: 5, ParaphraseMax: 1500,
	Factors:      augment.PaperFactors,
	PPDBVariants: 2, TrainCap: 20000, EvalN: 340, HeldOutFrac: 0.3,
	Model: model.Config{
		EmbedDim: 48, HiddenDim: 64, LR: 2e-3, Dropout: 0.1, Epochs: 4,
		EvalEvery: 4000, Patience: 4, PointerGen: true, PretrainLM: true,
		LMSteps: 4000, MaxDecodeLen: 64, MinVocabCount: 2,
	},
	Seeds: []int64{1, 2, 3},
}

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "unit":
		return Unit, true
	case "small":
		return Small, true
	case "full":
		return Full, true
	}
	return Scale{}, false
}

// Data is the output of the data-acquisition pipeline, before per-strategy
// instantiation.
type Data struct {
	Lib   *thingpedia.Library
	Scale Scale

	// Slot-marked sets.
	Synth       []dataset.Example
	Paraphrases []dataset.Example
	ParaNovelty dataset.NoveltyStats
	Discarded   int

	// HeldOutCombos are function combinations excluded from all training
	// data; paraphrases over them form the compositionality test set
	// (Section 5.2).
	HeldOutCombos map[string]bool

	// Instantiated evaluation sets (identical across strategies).
	ParaTest   []dataset.Example
	Validation []dataset.Example
	Cheatsheet []dataset.Example
	IFTTT      []dataset.Example

	sampler *params.Sampler
}

// BuildData runs synthesis, paraphrasing and evaluation-set construction.
func BuildData(lib *thingpedia.Library, gopt nltemplate.Options, scale Scale, seed int64) *Data {
	g := nltemplate.StandardGrammar(lib, gopt)
	return BuildDataWithGrammar(lib, g, scale, seed)
}

// BuildDataWithGrammar is BuildData with a caller-supplied grammar (used by
// the case studies and ablations that alter the rule set).
func BuildDataWithGrammar(lib *thingpedia.Library, g *nltemplate.Grammar, scale Scale, seed int64) *Data {
	return buildData(lib, g, scale, seed, "")
}

// BuildDataWithGrammarFlag restricts synthesis to rules carrying the flag
// (the Wang-et-al "basic" construct subset of the §5.2 limitation
// experiment).
func BuildDataWithGrammarFlag(lib *thingpedia.Library, g *nltemplate.Grammar, scale Scale, seed int64, flag string) *Data {
	return buildData(lib, g, scale, seed, flag)
}

// InstantiateExample exposes parameter replacement with the pipeline's
// shared sampler.
func InstantiateExample(d *Data, e *dataset.Example, rng *rand.Rand) (dataset.Example, bool) {
	inst, err := augment.Instantiate(e, d.sampler, rng)
	return inst, err == nil
}

func buildData(lib *thingpedia.Library, g *nltemplate.Grammar, scale Scale, seed int64, flag string) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{Lib: lib, Scale: scale, sampler: params.NewSampler()}

	// 1. Synthesis (Section 3.1).
	raw := synthesis.Synthesize(g, synthesis.Config{
		TargetPerRule: scale.SynthTarget,
		MaxDepth:      scale.MaxDepth,
		Seed:          seed,
		Schemas:       lib,
		Flag:          flag,
	})
	d.Synth = make([]dataset.Example, len(raw))
	for i := range raw {
		d.Synth[i] = dataset.Example{
			Words:   raw[i].Words,
			Program: raw[i].Program,
			Group:   dataset.GroupSynthesized,
			Depth:   raw[i].Depth,
		}
	}

	// 2. Paraphrasing (Section 3.2).
	selected := paraphrase.SelectForParaphrase(d.Synth, lib, scale.ParaphraseMax, rng)
	res := paraphrase.Simulate(selected, paraphrase.Config{Seed: seed + 1})
	d.Paraphrases = res.Paraphrases
	d.ParaNovelty = dataset.Novelty(res.Pairs)
	d.Discarded = res.Discarded

	// 3. Held-out function combinations for the compositionality test.
	combos := map[string]bool{}
	for i := range d.Paraphrases {
		if d.Paraphrases[i].Program.IsCompound() {
			combos[dataset.FunctionComboKey(d.Paraphrases[i].Program)] = true
		}
	}
	var comboList []string
	for c := range combos {
		comboList = append(comboList, c)
	}
	sort.Strings(comboList)
	rng.Shuffle(len(comboList), func(i, j int) { comboList[i], comboList[j] = comboList[j], comboList[i] })
	d.HeldOutCombos = map[string]bool{}
	for i, c := range comboList {
		if float64(i) < scale.HeldOutFrac*float64(len(comboList)) {
			d.HeldOutCombos[c] = true
		}
	}

	// 4. Paraphrase test set: paraphrases over held-out combinations,
	// sampled across combinations rather than taking a prefix.
	evalRng := rand.New(rand.NewSource(seed + 2))
	order := evalRng.Perm(len(d.Paraphrases))
	for _, i := range order {
		e := &d.Paraphrases[i]
		if !d.HeldOutCombos[dataset.FunctionComboKey(e.Program)] {
			continue
		}
		if inst, err := augment.Instantiate(e, d.sampler, evalRng); err == nil {
			d.ParaTest = append(d.ParaTest, inst)
		}
		if len(d.ParaTest) >= scale.EvalN {
			break
		}
	}

	// 5. Realistic evaluation sets (Section 5.1).
	seeds := sampleSeeds(d.Synth, scale.EvalN, rand.New(rand.NewSource(seed+3)))
	d.Validation = instantiateAll(evaldata.Build(evaldata.Developer, seeds, seed+4), d.sampler, evalRng)
	seeds2 := sampleSeeds(d.Synth, scale.EvalN, rand.New(rand.NewSource(seed+5)))
	d.Cheatsheet = instantiateAll(evaldata.Build(evaldata.Cheatsheet, seeds2, seed+6), d.sampler, evalRng)
	compound := filterExamples(d.Synth, func(e *dataset.Example) bool { return e.Program.IsCompound() })
	seeds3 := sampleSeeds(compound, scale.EvalN/2, rand.New(rand.NewSource(seed+7)))
	d.IFTTT = instantiateAll(ifttt.Clean(ifttt.Generate(seeds3, seed+8)), d.sampler, evalRng)
	return d
}

// sampleSeeds draws n distinct synthesized examples.
func sampleSeeds(pool []dataset.Example, n int, rng *rand.Rand) []dataset.Example {
	idx := rng.Perm(len(pool))
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]dataset.Example, 0, n)
	for _, i := range idx[:n] {
		out = append(out, pool[i])
	}
	return out
}

func instantiateAll(examples []dataset.Example, sampler *params.Sampler, rng *rand.Rand) []dataset.Example {
	out := make([]dataset.Example, 0, len(examples))
	for i := range examples {
		if inst, err := augment.Instantiate(&examples[i], sampler, rng); err == nil {
			out = append(out, inst)
		}
	}
	return out
}

func filterExamples(examples []dataset.Example, keep func(*dataset.Example) bool) []dataset.Example {
	var out []dataset.Example
	for i := range examples {
		if keep(&examples[i]) {
			out = append(out, examples[i])
		}
	}
	return out
}
