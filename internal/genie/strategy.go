package genie

import (
	"context"
	"math/rand"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/dialogue"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/thingtalk"
)

// Strategy is a training-data recipe (Section 5.3 / Fig. 8 and the Fig. 9
// Baseline).
type Strategy int

// Training strategies.
const (
	// StrategyGenie trains on synthesized plus paraphrase data with full
	// augmentation — the paper's contribution.
	StrategyGenie Strategy = iota
	// StrategySynthesizedOnly trains on synthesized data alone.
	StrategySynthesizedOnly
	// StrategyParaphraseOnly trains on paraphrase data alone (with
	// augmentation), the traditional methodology.
	StrategyParaphraseOnly
	// StrategyBaseline is the Wang-et-al baseline of Section 6: paraphrase
	// data only, no PPDB augmentation, no parameter expansion.
	StrategyBaseline
)

func (s Strategy) String() string {
	switch s {
	case StrategyGenie:
		return "genie"
	case StrategySynthesizedOnly:
		return "synthesized-only"
	case StrategyParaphraseOnly:
		return "paraphrase-only"
	case StrategyBaseline:
		return "baseline"
	}
	return "invalid"
}

// TargetOptions control program serialization for the Table 3 ablations.
type TargetOptions struct {
	// TypeAnnotations annotates parameter tokens with their types
	// (canonical; disabling is the "- type annotations" row).
	TypeAnnotations bool
	// Positional replaces keyword parameters ("- keyword param." row).
	Positional bool
	// ShuffleParams randomizes keyword-parameter order per training
	// example ("- canonicalization" row; evaluation still canonicalizes).
	ShuffleParams bool
}

// CanonicalTargets is the default serialization.
var CanonicalTargets = TargetOptions{TypeAnnotations: true}

// strategySources returns a strategy's slot-marked source examples
// (held-out combinations removed) together with its expansion factors and
// PPDB variant count. Both the materializing TrainingExamples and the
// streaming TrainingStream build on it, so the two paths always train on
// the same data recipe.
func (d *Data) strategySources(s Strategy) ([]dataset.Example, augment.ExpansionFactors, int) {
	factors := d.Scale.Factors
	ppdb := d.Scale.PPDBVariants
	var sources []dataset.Example
	switch s {
	case StrategyGenie:
		sources = append(sources, d.Synth...)
		sources = append(sources, d.Paraphrases...)
	case StrategySynthesizedOnly:
		sources = append(sources, d.Synth...)
	case StrategyParaphraseOnly:
		sources = append(sources, d.Paraphrases...)
	case StrategyBaseline:
		sources = append(sources, d.Paraphrases...)
		factors = augment.ExpansionFactors{ParaphraseWithString: 1, Paraphrase: 1, SynthesizedPrimitive: 1, Synthesized: 1}
		ppdb = 0
	}
	sources = filterExamples(sources, func(e *dataset.Example) bool {
		return !d.HeldOutCombos[dataset.FunctionComboKey(e.Program)]
	})
	return sources, factors, ppdb
}

// TrainingExamples instantiates the training set for a strategy. Held-out
// combinations never enter training.
func (d *Data) TrainingExamples(s Strategy, rng *rand.Rand) []dataset.Example {
	sources, factors, ppdb := d.strategySources(s)
	train := augment.Expand(sources, factors, d.sampler, rng)
	if ppdb > 0 {
		train = augment.AugmentParaphrases(train, ppdb, rng)
	}
	rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
	if d.Scale.TrainCap > 0 && len(train) > d.Scale.TrainCap {
		train = train[:d.Scale.TrainCap]
	}
	return train
}

// ToPairs serializes examples into model training pairs under the given
// target options.
func ToPairs(examples []dataset.Example, topt TargetOptions, schemas thingtalk.SchemaSource, rng *rand.Rand) []model.Pair {
	opt := thingtalk.EncodeOptions{
		TypeAnnotations: topt.TypeAnnotations,
		Positional:      topt.Positional,
		Schemas:         schemas,
	}
	out := make([]model.Pair, 0, len(examples))
	for i := range examples {
		prog := examples[i].Program
		if topt.ShuffleParams {
			prog = prog.Clone()
			shuffleParams(prog, rng)
		}
		out = append(out, model.Pair{
			Src: examples[i].Words,
			Tgt: prog.Encode(opt),
		})
	}
	return out
}

// shuffleParams randomizes the keyword-parameter order of every invocation
// (the -canonicalization ablation).
func shuffleParams(p *thingtalk.Program, rng *rand.Rand) {
	for _, inv := range p.Invocations() {
		rng.Shuffle(len(inv.In), func(i, j int) { inv.In[i], inv.In[j] = inv.In[j], inv.In[i] })
	}
}

// TrainedParser is a parser plus the serialization it was trained with.
type TrainedParser struct {
	Parser *model.Parser
	Topt   TargetOptions
}

// Parse implements eval.Decoder.
func (t *TrainedParser) Parse(words []string) []string { return t.Parser.Parse(words) }

// TrainOptions bundle the per-run knobs of Train.
type TrainOptions struct {
	Strategy Strategy
	Topt     TargetOptions
	Model    model.Config
	Seed     int64
	// Checkpoint, when set, makes training resumable: epoch (and optionally
	// mid-epoch) checkpoints go to the store, and a run that finds a
	// compatible checkpoint resumes its exact trajectory instead of starting
	// over.
	Checkpoint model.CheckpointStore
	// CheckpointEverySteps is the mid-epoch checkpoint cadence in optimizer
	// steps (0 = epoch boundaries only). Only consulted with Checkpoint set.
	CheckpointEverySteps int
	// Logf receives resume/mismatch events from resumable training
	// (nil discards).
	Logf func(format string, args ...any)
	// Dialogue augments the training pairs with synthesized multi-turn
	// sessions (package dialogue) and turns on the model's context encoder:
	// every follow-up turn becomes one contextual pair whose Ctx is the
	// previous turn's target serialization. Single-turn pairs keep an empty
	// Ctx, so the parser still decodes opening commands bit-identically to a
	// non-contextual one.
	Dialogue bool
	// DialogueTurns is the session length for Dialogue synthesis
	// (< 2 = the dialogue package's default of 3).
	DialogueTurns int
}

// Train builds the training set for a strategy and trains a parser; the
// ThingTalk LM pre-training corpus is the synthesized portion of the
// training set (Section 4.2).
func (d *Data) Train(opt TrainOptions) *TrainedParser {
	rng := rand.New(rand.NewSource(opt.Seed))
	trainSet := d.TrainingExamples(opt.Strategy, rng)
	pairs := ToPairs(trainSet, opt.Topt, d.Lib, rng)

	var lm [][]string
	if opt.Model.PretrainLM {
		for i := range trainSet {
			if trainSet[i].Group == dataset.GroupSynthesized {
				lm = append(lm, pairs[i].Tgt)
			}
		}
	}
	// Validation pairs for early stopping come from the validation set.
	valPairs := ToPairs(d.Validation, opt.Topt, d.Lib, rng)

	mcfg := opt.Model
	mcfg.Seed = opt.Seed
	if opt.Dialogue {
		mcfg.Contextual = true
		pairs = append(pairs, d.dialoguePairs(trainSet, opt)...)
	}
	var parser *model.Parser
	if opt.Checkpoint != nil {
		//genielint:ctx-root training CLI entry point: interruption arrives as process death, which the checkpoint store absorbs
		parser, _ = model.TrainResumable(context.Background(), pairs, valPairs, lm, mcfg, model.TrainOpts{
			Checkpoint: opt.Checkpoint,
			EverySteps: opt.CheckpointEverySteps,
			Logf:       opt.Logf,
		})
	} else {
		parser = model.Train(pairs, valPairs, lm, mcfg)
	}
	return &TrainedParser{Parser: parser, Topt: opt.Topt}
}

// dialoguePairs synthesizes multi-turn sessions from the (already
// instantiated) training set and flattens their follow-up turns into
// contextual pairs. First turns are skipped: each seed example is already a
// single-turn pair, and session synthesis copies its program verbatim.
func (d *Data) dialoguePairs(trainSet []dataset.Example, opt TrainOptions) []model.Pair {
	sessions := dialogue.Synthesize(trainSet, dialogue.Config{
		Seed:    opt.Seed,
		Turns:   opt.DialogueTurns,
		Schemas: d.Lib,
		Encode: thingtalk.EncodeOptions{
			TypeAnnotations: opt.Topt.TypeAnnotations,
			Positional:      opt.Topt.Positional,
			Schemas:         d.Lib,
		},
	})
	var out []model.Pair
	for _, p := range dialogue.Pairs(sessions) {
		if len(p.Ctx) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Evaluate scores a trained parser on an evaluation set.
func (d *Data) Evaluate(p *TrainedParser, examples []dataset.Example) eval.Report {
	return eval.Evaluate(p, examples, d.Lib)
}

// NewProgramSubset returns the validation examples whose function
// combinations never appear in training (the Table 3 "New Program" column).
func (d *Data) NewProgramSubset() []dataset.Example {
	return filterExamples(d.Validation, func(e *dataset.Example) bool {
		return d.HeldOutCombos[dataset.FunctionComboKey(e.Program)]
	})
}
