package genie

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func buildUnitData(t testing.TB) *Data {
	t.Helper()
	lib := thingpedia.Builtin()
	return BuildData(lib, nltemplate.DefaultOptions, Unit, 1)
}

func TestBuildDataShape(t *testing.T) {
	d := buildUnitData(t)
	if len(d.Synth) < 500 {
		t.Fatalf("too little synthesized data: %d", len(d.Synth))
	}
	if len(d.Paraphrases) < 200 {
		t.Fatalf("too few paraphrases: %d", len(d.Paraphrases))
	}
	if len(d.ParaTest) == 0 || len(d.Validation) == 0 || len(d.Cheatsheet) == 0 || len(d.IFTTT) == 0 {
		t.Fatalf("evaluation sets empty: para=%d val=%d cheat=%d ifttt=%d",
			len(d.ParaTest), len(d.Validation), len(d.Cheatsheet), len(d.IFTTT))
	}
	if len(d.HeldOutCombos) == 0 {
		t.Fatal("no held-out combinations")
	}
	// Evaluation sets must be fully instantiated (no slots) and well typed.
	for _, set := range [][]dataset.Example{d.ParaTest, d.Validation, d.Cheatsheet, d.IFTTT} {
		for i := range set {
			for _, w := range set[i].Words {
				if len(w) > 7 && w[:7] == "__slot_" {
					t.Fatalf("uninstantiated slot in eval sentence: %s", set[i].Sentence())
				}
			}
			if err := thingtalk.Typecheck(set[i].Program, d.Lib); err != nil {
				t.Fatalf("eval program fails typecheck: %v\n%s", err, set[i].Program)
			}
		}
	}
	t.Logf("synth=%d para=%d (discarded %d, novelty %.0f%% words / %.0f%% bigrams) paraTest=%d val=%d cheat=%d ifttt=%d",
		len(d.Synth), len(d.Paraphrases), d.Discarded,
		d.ParaNovelty.NewWordRate, d.ParaNovelty.NewBigramRate,
		len(d.ParaTest), len(d.Validation), len(d.Cheatsheet), len(d.IFTTT))
}

func TestTrainingExamplesRespectHoldout(t *testing.T) {
	d := buildUnitData(t)
	rng := rand.New(rand.NewSource(9))
	for _, s := range []Strategy{StrategyGenie, StrategySynthesizedOnly, StrategyParaphraseOnly, StrategyBaseline} {
		train := d.TrainingExamples(s, rng)
		if len(train) == 0 {
			t.Fatalf("strategy %s produced no training data", s)
		}
		for i := range train {
			if d.HeldOutCombos[dataset.FunctionComboKey(train[i].Program)] {
				t.Fatalf("strategy %s leaked a held-out combination", s)
			}
		}
	}
	// Baseline must be smaller than paraphrase-only (no expansion).
	base := d.TrainingExamples(StrategyBaseline, rand.New(rand.NewSource(1)))
	para := d.TrainingExamples(StrategyParaphraseOnly, rand.New(rand.NewSource(1)))
	if len(base) >= len(para) {
		t.Errorf("baseline (%d) should be smaller than paraphrase-only (%d)", len(base), len(para))
	}
}

func TestToPairsAblations(t *testing.T) {
	d := buildUnitData(t)
	rng := rand.New(rand.NewSource(3))
	examples := d.TrainingExamples(StrategySynthesizedOnly, rng)[:20]

	canon := ToPairs(examples, CanonicalTargets, d.Lib, rng)
	if len(canon) != 20 {
		t.Fatal("missing pairs")
	}
	hasAnnotation := false
	for _, p := range canon {
		for _, tok := range p.Tgt {
			if len(tok) > 6 && tok[:6] == "param:" && countByte(tok, ':') >= 2 {
				hasAnnotation = true
			}
		}
	}
	if !hasAnnotation {
		t.Error("canonical targets should carry type annotations")
	}

	plain := ToPairs(examples, TargetOptions{}, d.Lib, rng)
	for _, p := range plain {
		for _, tok := range p.Tgt {
			if len(tok) > 6 && tok[:6] == "param:" && countByte(tok, ':') >= 2 {
				t.Fatalf("type annotation leaked into -annotations targets: %s", tok)
			}
		}
	}

	pos := ToPairs(examples, TargetOptions{Positional: true}, d.Lib, rng)
	for _, p := range pos {
		for _, tok := range p.Tgt {
			if len(tok) > 6 && tok[:6] == "param:" {
				// VarRefs still use param: tokens; keyword assignments do not.
				continue
			}
		}
	}

	// Shuffled targets must still parse to the same canonical program.
	shuf := ToPairs(examples, TargetOptions{TypeAnnotations: true, ShuffleParams: true}, d.Lib, rng)
	for i, p := range shuf {
		prog, err := thingtalk.ParseTokens(p.Tgt, thingtalk.ParseOptions{})
		if err != nil {
			t.Fatalf("shuffled target unparseable: %v", err)
		}
		if !thingtalk.SameProgram(prog, examples[i].Program, d.Lib) {
			t.Fatalf("shuffling changed semantics")
		}
	}
}

func countByte(s string, c byte) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			n++
		}
	}
	return n
}

func TestEndToEndTrainingImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	d := buildUnitData(t)
	p := d.Train(TrainOptions{Strategy: StrategyGenie, Topt: CanonicalTargets, Model: Unit.Model, Seed: 1})
	// Integrity check: the parser must at least have fit its own training
	// distribution (absolute accuracy on held-out data is a property of the
	// scale and is measured by the experiment harness).
	rng := randSeed(77)
	trainSample := d.TrainingExamples(StrategyGenie, rng)
	if len(trainSample) > 50 {
		trainSample = trainSample[:50]
	}
	trainRep := d.Evaluate(p, trainSample)
	parRep := d.Evaluate(p, d.ParaTest)
	t.Logf("unit-scale genie: train-subset %.1f%% prog / %.1f%% fn; paraphrase test %.1f%% prog / %.1f%% fn / %.1f%% syntax",
		trainRep.ProgramAccuracy(), trainRep.FunctionAccuracy(),
		parRep.ProgramAccuracy(), parRep.FunctionAccuracy(), parRep.SyntaxRate())
	if trainRep.FunctionAccuracy() < 30 {
		t.Errorf("unit-scale training too weak on its own data: %.1f%% function accuracy", trainRep.FunctionAccuracy())
	}
}

func randSeed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
