// Package paraphrase simulates the crowdsourced paraphrasing stage of
// Section 3.2. Real Genie posts batches to Amazon Mechanical Turk; this
// substitute models the properties training depends on — linguistic variety
// with preserved semantics, plus a worker error model — and implements
// Genie's quality heuristics that discard obvious mistakes.
package paraphrase

import (
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/thingpedia"
)

// Config controls the simulated crowdsourcing batch.
type Config struct {
	// WorkersPerSentence is how many workers see each synthesized sentence
	// (the paper shows each sentence to multiple workers).
	WorkersPerSentence int
	// PerWorker is how many paraphrases each worker writes (the paper asks
	// for two; one yields minimal edits, three exhausts workers).
	PerWorker int
	// ErrorRate is the probability a worker produces a wrong paraphrase.
	ErrorRate float64
	// Seed makes the batch deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's batch design.
var DefaultConfig = Config{WorkersPerSentence: 3, PerWorker: 2, ErrorRate: 0.08}

// Result is the outcome of a batch.
type Result struct {
	Paraphrases []dataset.Example
	// Pairs holds (source words, paraphrase words) for novelty statistics.
	Pairs [][2][]string
	// Discarded counts paraphrases rejected by the quality heuristics.
	Discarded int
}

// Simulate runs a crowdsourcing batch over the selected examples.
func Simulate(examples []dataset.Example, cfg Config) Result {
	if cfg.WorkersPerSentence <= 0 {
		cfg.WorkersPerSentence = DefaultConfig.WorkersPerSentence
	}
	if cfg.PerWorker <= 0 {
		cfg.PerWorker = DefaultConfig.PerWorker
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	for i := range examples {
		src := &examples[i]
		for w := 0; w < cfg.WorkersPerSentence; w++ {
			worker := newWorker(rng)
			for k := 0; k < cfg.PerWorker; k++ {
				words := worker.rewrite(src.Words, rng)
				if rng.Float64() < cfg.ErrorRate {
					words = injectError(words, rng)
				}
				if !Acceptable(src.Words, words) {
					res.Discarded++
					continue
				}
				p := src.Clone()
				p.Words = words
				p.Group = dataset.GroupParaphrase
				res.Paraphrases = append(res.Paraphrases, p)
				res.Pairs = append(res.Pairs, [2][]string{src.Words, words})
			}
		}
	}
	return res
}

// Acceptable implements Genie's quality heuristics: parameter slots must be
// preserved exactly, the length must stay within a plausible ratio, and the
// paraphrase must differ from the source.
func Acceptable(src, para []string) bool {
	if len(para) == 0 {
		return false
	}
	if strings.Join(src, " ") == strings.Join(para, " ") {
		return false
	}
	if countSlots(src) != countSlots(para) {
		return false
	}
	for slot, n := range slotCounts(src) {
		if slotCounts(para)[slot] != n {
			return false
		}
	}
	ratio := float64(len(para)) / float64(len(src))
	return ratio >= 0.4 && ratio <= 2.5
}

func countSlots(words []string) int {
	n := 0
	for _, w := range words {
		if strings.HasPrefix(w, "__slot_") {
			n++
		}
	}
	return n
}

func slotCounts(words []string) map[string]int {
	out := map[string]int{}
	for _, w := range words {
		if strings.HasPrefix(w, "__slot_") {
			out[w]++
		}
	}
	return out
}

// SelectForParaphrase picks which synthesized sentences to send to workers
// (Section 3.2): every primitive gets a chance, and compound commands are
// preferred when they involve at least one easy-to-understand skill, since
// combining easy functions with difficult ones maximizes paraphrase
// success.
func SelectForParaphrase(examples []dataset.Example, lib *thingpedia.Library, maxN int, rng *rand.Rand) []dataset.Example {
	var prims, easyCompound, hardCompound []int
	for i := range examples {
		p := examples[i].Program
		if !p.IsCompound() {
			prims = append(prims, i)
			continue
		}
		easy := false
		for _, skill := range p.Skills() {
			if c, ok := lib.Class(skill); ok && c.Easy {
				easy = true
				break
			}
		}
		if easy {
			easyCompound = append(easyCompound, i)
		} else {
			hardCompound = append(hardCompound, i)
		}
	}
	// Budget: half primitives, 40% easy compounds, 10% hard compounds.
	var out []dataset.Example
	take := func(idx []int, n int) {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		if n > len(idx) {
			n = len(idx)
		}
		for _, i := range idx[:n] {
			out = append(out, examples[i])
		}
	}
	take(prims, maxN/2)
	take(easyCompound, maxN*4/10)
	take(hardCompound, maxN/10)
	return out
}

// --- Worker model --------------------------------------------------------------

// worker is one simulated crowdworker with a sampled personal style.
type worker struct {
	polite   bool
	casual   bool
	reorders bool
	drops    bool
}

func newWorker(rng *rand.Rand) worker {
	return worker{
		polite:   rng.Intn(3) == 0,
		casual:   rng.Intn(3) == 0,
		reorders: rng.Intn(2) == 0,
		drops:    rng.Intn(3) == 0,
	}
}

// rewrite produces one paraphrase of the sentence.
func (w worker) rewrite(words []string, rng *rand.Rand) []string {
	out := append([]string(nil), words...)
	out = substitute(out, rng, 1+rng.Intn(3))
	if w.reorders {
		out = reorderWhenClause(out)
	}
	if w.drops {
		out = dropFunctionWords(out, rng)
	}
	if w.polite {
		out = append([]string{pick(rng, politePrefixes)}, out...)
		out = flatten(out)
	}
	if w.casual && rng.Intn(2) == 0 {
		out = append(out, strings.Fields(pick(rng, casualSuffixes))...)
	}
	return out
}

// substitute applies up to n human-style lexical substitutions.
func substitute(words []string, rng *rand.Rand, n int) []string {
	out := append([]string(nil), words...)
	for k := 0; k < n; k++ {
		positions := rng.Perm(len(out))
		for _, i := range positions {
			choices := humanTable[out[i]]
			if len(choices) == 0 {
				continue
			}
			repl := strings.Fields(choices[rng.Intn(len(choices))])
			next := append([]string(nil), out[:i]...)
			next = append(next, repl...)
			next = append(next, out[i+1:]...)
			out = next
			break
		}
	}
	return out
}

// reorderWhenClause swaps "<action> when <event>" and "when <event> ,
// <action>" forms.
func reorderWhenClause(words []string) []string {
	joined := strings.Join(words, " ")
	if strings.HasPrefix(joined, "when ") {
		if i := indexOf(words, ","); i > 0 && i < len(words)-1 {
			out := append([]string(nil), words[i+1:]...)
			out = append(out, words[:i]...)
			return out
		}
		return words
	}
	if i := indexOf(words, "when"); i > 0 {
		out := append([]string(nil), words[i:]...)
		out = append(out, ",")
		out = append(out, words[:i]...)
		return out
	}
	return words
}

func dropFunctionWords(words []string, rng *rand.Rand) []string {
	out := make([]string, 0, len(words))
	dropped := false
	for _, w := range words {
		if !dropped && (w == "the" || w == "a" || w == "my") && rng.Intn(2) == 0 {
			dropped = true
			continue
		}
		out = append(out, w)
	}
	return out
}

// injectError models careless workers: dropping a parameter, corrupting a
// word, or returning a truncation. Most such outputs are caught by the
// quality heuristics.
func injectError(words []string, rng *rand.Rand) []string {
	out := append([]string(nil), words...)
	switch rng.Intn(3) {
	case 0: // drop a slot
		for i, w := range out {
			if strings.HasPrefix(w, "__slot_") {
				return append(out[:i], out[i+1:]...)
			}
		}
	case 1: // truncate hard
		if len(out) > 3 {
			return out[:len(out)/3]
		}
	default: // substitute a content word with noise
		i := rng.Intn(len(out))
		if !strings.HasPrefix(out[i], "__slot_") {
			out[i] = pick(rng, noiseWords)
		}
	}
	return out
}

func indexOf(words []string, w string) int {
	for i, x := range words {
		if x == w {
			return i
		}
	}
	return -1
}

func flatten(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		out = append(out, strings.Fields(w)...)
	}
	return out
}

func pick(rng *rand.Rand, list []string) string { return list[rng.Intn(len(list))] }

var politePrefixes = []string{"please", "hey ,", "can you", "i would like you to", "could you"}

var casualSuffixes = []string{"for me", "thanks", "right away", "ok"}

var noiseWords = []string{"banana", "whatever", "thing", "stuff", "asap"}

// humanTable is the crowd's lexicon: partly overlapping PPDB, partly its
// own colloquialisms.
var humanTable = map[string][]string{
	"get":         {"give me", "i want", "grab", "fetch", "pull up", "show"},
	"show":        {"show", "display", "give"},
	"list":        {"list out", "enumerate", "show all"},
	"tell":        {"let", "inform"},
	"notify":      {"ping", "warn", "tell"},
	"me":          {"me"},
	"when":        {"whenever", "every time", "as soon as", "the moment", "if"},
	"changes":     {"change", "is updated", "gets updated"},
	"send":        {"shoot", "fire off", "send out"},
	"post":        {"share", "put", "publish"},
	"picture":     {"photo", "pic", "snap", "image"},
	"pictures":    {"photos", "pics", "images"},
	"tweet":       {"tweet out", "post on twitter"},
	"tweets":      {"twitter posts", "posts"},
	"email":       {"mail", "e-mail"},
	"emails":      {"mail", "messages"},
	"message":     {"msg", "text", "note"},
	"messages":    {"msgs", "texts"},
	"file":        {"document", "doc"},
	"files":       {"documents", "docs"},
	"folder":      {"directory"},
	"song":        {"track", "tune", "jam"},
	"songs":       {"tracks", "tunes"},
	"play":        {"put on", "throw on", "start"},
	"music":       {"tunes"},
	"weather":     {"forecast", "weather report"},
	"articles":    {"stories", "news", "headlines"},
	"video":       {"clip", "vid"},
	"videos":      {"clips", "vids"},
	"new":         {"fresh", "recent", "latest"},
	"latest":      {"newest", "most recent"},
	"every":       {"each", "once every"},
	"find":        {"look up", "search", "dig up"},
	"make":        {"create", "set up"},
	"turn":        {"switch", "flip"},
	"add":         {"put", "stick", "throw"},
	"remind":      {"nudge", "tell"},
	"temperature": {"temp"},
	"lights":      {"lamps", "bulbs"},
	"bigger":      {"larger"},
	"greater":     {"more", "higher"},
	"less":        {"lower", "smaller"},
	"house":       {"home", "place"},
	"receive":     {"get"},
	"upload":      {"put up", "post"},
	"delete":      {"remove", "trash", "get rid of"},
	"start":       {"kick off", "begin", "fire up"},
	"stop":        {"halt", "kill"},
	"check":       {"look at", "peek at"},
	"want":        {"would like", "need"},
	"posts":       {"updates"},
	"channel":     {"chat", "room"},
	"front":       {"main"},
	"page":        {"page"},
	"morning":     {"am", "morning"},
	"day":         {"morning", "day"},
}
