package paraphrase

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func srcExample() dataset.Example {
	return dataset.Example{
		Words: strings.Fields("get a picture of __slot_1 and post it on facebook when it rains"),
		Program: &thingtalk.Program{Stream: thingtalk.Now(),
			Query:  thingtalk.Invoke("com.thecatapi", "get"),
			Action: thingtalk.Notify()},
		Group: dataset.GroupSynthesized,
	}
}

func TestSimulateProducesVariety(t *testing.T) {
	res := Simulate([]dataset.Example{srcExample()}, Config{Seed: 1})
	if len(res.Paraphrases) == 0 {
		t.Fatal("no paraphrases")
	}
	distinct := map[string]bool{}
	for _, p := range res.Paraphrases {
		if p.Group != dataset.GroupParaphrase {
			t.Error("wrong group")
		}
		distinct[p.Sentence()] = true
	}
	if len(distinct) < 3 {
		t.Errorf("too little variety: %d distinct", len(distinct))
	}
}

func TestAcceptableHeuristics(t *testing.T) {
	src := strings.Fields("post __slot_1 on twitter")
	cases := []struct {
		name string
		para []string
		want bool
	}{
		{"good", strings.Fields("share __slot_1 with my twitter followers"), true},
		{"identical", src, false},
		{"dropped slot", strings.Fields("post something on twitter"), false},
		{"too short", strings.Fields("__slot_1"), false},
		{"empty", nil, false},
		{"way too long", strings.Fields(strings.Repeat("very ", 30) + "__slot_1"), false},
	}
	for _, c := range cases {
		if got := Acceptable(src, c.para); got != c.want {
			t.Errorf("%s: Acceptable=%v want %v", c.name, got, c.want)
		}
	}
}

func TestErrorsAreMostlyFiltered(t *testing.T) {
	res := Simulate([]dataset.Example{srcExample()}, Config{Seed: 3, ErrorRate: 1.0})
	// With 100% error injection almost everything should be discarded.
	if res.Discarded == 0 {
		t.Error("quality heuristics never fired")
	}
	for _, p := range res.Paraphrases {
		if !Acceptable(srcExample().Words, p.Words) {
			t.Error("unacceptable paraphrase kept")
		}
	}
}

func TestSelectForParaphrasePrefersEasyCompounds(t *testing.T) {
	lib := thingpedia.Builtin()
	prim := srcExample()
	compoundEasy := srcExample()
	compoundEasy.Program = &thingtalk.Program{Stream: thingtalk.Now(),
		Query:  thingtalk.Invoke("com.thecatapi", "get"),
		Action: thingtalk.Do("com.twitter", "post", thingtalk.In("status", thingtalk.StringValue("x")))}
	sel := SelectForParaphrase([]dataset.Example{prim, compoundEasy}, lib, 10, rand.New(rand.NewSource(1)))
	if len(sel) != 2 {
		t.Fatalf("expected both selected, got %d", len(sel))
	}
}
