// Package dataset defines the example representation shared by the Genie
// pipeline stages (synthesis output, paraphrases, augmented training sets,
// evaluation sets) and the dataset statistics reported in Section 5.2 and
// Fig. 7 of the paper.
package dataset

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/thingtalk"
)

// Group identifies the provenance of an example; the training strategy and
// the parameter-expansion factors depend on it (Section 3.4).
type Group int

// Example groups.
const (
	// GroupSynthesized examples come straight from template synthesis.
	GroupSynthesized Group = iota
	// GroupParaphrase examples were (simulated-)crowdworker paraphrased.
	GroupParaphrase
	// GroupEval examples are realistic evaluation data (developer,
	// cheatsheet, or IFTTT).
	GroupEval
)

func (g Group) String() string {
	switch g {
	case GroupSynthesized:
		return "synthesized"
	case GroupParaphrase:
		return "paraphrase"
	case GroupEval:
		return "eval"
	}
	return "invalid"
}

// Example is one sentence/program pair.
type Example struct {
	// Words is the tokenized sentence. Before parameter replacement it may
	// contain __slot_N markers; afterwards it contains normalized
	// placeholders (NUMBER_0, DATE_0, ...) and real words.
	Words []string
	// Program is the canonical target program.
	Program *thingtalk.Program
	// Alt holds additional valid annotations; evaluation accepts any of
	// them (Section 5: "we manually annotate each sentence in the test
	// sets with all programs that provide a valid interpretation").
	Alt []*thingtalk.Program
	// Group is the example's provenance.
	Group Group
	// Depth is the synthesis derivation depth (0 when unknown).
	Depth int
}

// Sentence returns the words joined by spaces.
func (e *Example) Sentence() string { return strings.Join(e.Words, " ") }

// Clone returns a deep copy.
func (e *Example) Clone() Example {
	alt := make([]*thingtalk.Program, len(e.Alt))
	for i, p := range e.Alt {
		alt[i] = p.Clone()
	}
	return Example{
		Words:   append([]string(nil), e.Words...),
		Program: e.Program.Clone(),
		Alt:     alt,
		Group:   e.Group,
		Depth:   e.Depth,
	}
}

// Collect drains a streaming pipeline stage into a slice, stopping after
// max examples (0 = no cap) or when ctx is cancelled. It is the bridge from
// the bounded-channel pipeline (synthesis.SynthesizeStream,
// augment.ExpandStream) back to the slice-based APIs. Returning early —
// because max was reached or ctx fired — leaves the producer goroutines
// parked on their bounded channels until ctx is cancelled, so callers that
// may stop before the stream drains must own a cancelable context and
// cancel it afterwards (as cmd/genie pipeline does).
func Collect(ctx context.Context, ch <-chan Example, max int) []Example {
	var out []Example
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, e)
			if max > 0 && len(out) >= max {
				return out
			}
		case <-ctx.Done():
			return out
		}
	}
}

// Set is an ordered collection of examples.
type Set struct {
	Name     string
	Examples []Example
}

// Len returns the number of examples.
func (s *Set) Len() int { return len(s.Examples) }

// Add appends examples.
func (s *Set) Add(examples ...Example) { s.Examples = append(s.Examples, examples...) }

// Shuffle permutes the set deterministically.
func (s *Set) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(s.Examples), func(i, j int) {
		s.Examples[i], s.Examples[j] = s.Examples[j], s.Examples[i]
	})
}

// Split partitions the set into two at fraction f of its size (after the
// caller has shuffled, typically).
func (s *Set) Split(f float64) (Set, Set) {
	n := int(f * float64(len(s.Examples)))
	if n < 0 {
		n = 0
	}
	if n > len(s.Examples) {
		n = len(s.Examples)
	}
	return Set{Name: s.Name + "-a", Examples: s.Examples[:n]},
		Set{Name: s.Name + "-b", Examples: s.Examples[n:]}
}

// ProgramKey returns the canonical program identity of an example (used for
// grouping by program and for held-out-combination splits).
func ProgramKey(p *thingtalk.Program) string { return p.String() }

// FunctionComboKey returns the sorted set of functions a program uses; the
// compositionality evaluation holds out whole combinations (Section 5.2).
func FunctionComboKey(p *thingtalk.Program) string {
	fns := append([]string(nil), p.Functions()...)
	sort.Strings(fns)
	return strings.Join(fns, "+")
}

// --- Fig. 7: training-set characteristics -------------------------------------

// Characteristics classifies the programs of a set into the five buckets of
// Fig. 7.
type Characteristics struct {
	Primitive             int // one function, no filter
	PrimitiveWithFilter   int // one function + filters
	Compound              int // two+ functions, no parameter passing, no filter
	CompoundWithParamPass int // two+ functions with parameter passing
	CompoundWithFilter    int // two+ functions with filters (no passing)
	Total                 int
}

// Classify computes Fig. 7's buckets for a list of examples.
func Classify(examples []Example) Characteristics {
	var c Characteristics
	for i := range examples {
		p := examples[i].Program
		c.Total++
		switch {
		case !p.IsCompound() && !p.HasFilter():
			c.Primitive++
		case !p.IsCompound():
			c.PrimitiveWithFilter++
		case p.HasParamPassing():
			c.CompoundWithParamPass++
		case p.HasFilter():
			c.CompoundWithFilter++
		default:
			c.Compound++
		}
	}
	return c
}

// Fractions returns the five buckets as percentages.
func (c Characteristics) Fractions() map[string]float64 {
	if c.Total == 0 {
		return nil
	}
	t := float64(c.Total)
	return map[string]float64{
		"primitive":           100 * float64(c.Primitive) / t,
		"primitive+filters":   100 * float64(c.PrimitiveWithFilter) / t,
		"compound":            100 * float64(c.Compound) / t,
		"compound+param-pass": 100 * float64(c.CompoundWithParamPass) / t,
		"compound+filters":    100 * float64(c.CompoundWithFilter) / t,
	}
}

// String renders the characteristics like the Fig. 7 legend.
func (c Characteristics) String() string {
	f := c.Fractions()
	return fmt.Sprintf("primitive %.0f%% (+filters %.0f%%), compound %.0f%% (+param-passing %.0f%%, +filters %.0f%%)",
		f["primitive"], f["primitive+filters"], f["compound"],
		f["compound+param-pass"], f["compound+filters"])
}

// --- Section 5.2: vocabulary statistics ----------------------------------------

// Vocab computes the distinct non-placeholder words of a set.
func Vocab(examples []Example) map[string]bool {
	out := map[string]bool{}
	for i := range examples {
		for _, w := range examples[i].Words {
			if !strings.HasPrefix(w, "__slot_") {
				out[w] = true
			}
		}
	}
	return out
}

// DistinctPrograms counts canonical program spellings.
func DistinctPrograms(examples []Example) int {
	seen := map[string]bool{}
	for i := range examples {
		seen[ProgramKey(examples[i].Program)] = true
	}
	return len(seen)
}

// DistinctCombos counts unique function combinations.
func DistinctCombos(examples []Example) int {
	seen := map[string]bool{}
	for i := range examples {
		seen[FunctionComboKey(examples[i].Program)] = true
	}
	return len(seen)
}

// NoveltyStats measures how much new language a derived sentence introduces
// relative to its source (the paper reports 38% new words and 65% new
// bigrams per paraphrase).
type NoveltyStats struct {
	NewWordRate   float64
	NewBigramRate float64
}

// Novelty compares derived sentences with their sources pairwise.
func Novelty(pairs [][2][]string) NoveltyStats {
	var wordSum, bigramSum float64
	n := 0
	for _, pair := range pairs {
		src, der := pair[0], pair[1]
		srcW := map[string]bool{}
		for _, w := range src {
			srcW[w] = true
		}
		srcB := bigrams(src)
		newW, newB := 0, 0
		derB := bigrams(der)
		for _, w := range der {
			if !srcW[w] {
				newW++
			}
		}
		for b := range derB {
			if !srcB[b] {
				newB++
			}
		}
		if len(der) > 0 {
			wordSum += float64(newW) / float64(len(der))
		}
		if len(derB) > 0 {
			bigramSum += float64(newB) / float64(len(derB))
		}
		n++
	}
	if n == 0 {
		return NoveltyStats{}
	}
	return NoveltyStats{
		NewWordRate:   100 * wordSum / float64(n),
		NewBigramRate: 100 * bigramSum / float64(n),
	}
}

func bigrams(words []string) map[string]bool {
	out := map[string]bool{}
	for i := 1; i < len(words); i++ {
		out[words[i-1]+" "+words[i]] = true
	}
	return out
}
