package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/thingtalk"
)

func ex(src string, words string) Example {
	p, err := thingtalk.ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return Example{Words: strings.Fields(words), Program: p}
}

func TestClassifyFig7Buckets(t *testing.T) {
	examples := []Example{
		ex(`now => @a.b.q => notify`, "get things"),
		ex(`now => @a.b.q filter param:x == 1 => notify`, "get filtered things"),
		ex(`now => @a.b.q => @c.d.act`, "get and act"),
		ex(`now => @a.b.q => @c.d.act param:x = param:y`, "get and act with it"),
		ex(`monitor ( @a.b.q filter param:x == 1 ) => @c.d.act`, "when filtered , act"),
	}
	c := Classify(examples)
	if c.Primitive != 1 || c.PrimitiveWithFilter != 1 || c.Compound != 1 ||
		c.CompoundWithParamPass != 1 || c.CompoundWithFilter != 1 {
		t.Errorf("classification wrong: %+v", c)
	}
	f := c.Fractions()
	var sum float64
	for _, v := range f {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("fractions do not sum to 100: %v", f)
	}
	if c.String() == "" {
		t.Error("empty render")
	}
}

func TestProgramAndComboKeys(t *testing.T) {
	a := ex(`now => @a.b.q => @c.d.act`, "x")
	b := ex(`now => @c.d.q2 => @a.b.act2`, "y")
	if FunctionComboKey(a.Program) == FunctionComboKey(b.Program) {
		t.Error("different combos collide")
	}
	if ProgramKey(a.Program) == ProgramKey(b.Program) {
		t.Error("different programs collide")
	}
}

func TestVocabAndDistinct(t *testing.T) {
	examples := []Example{
		ex(`now => @a.b.q => notify`, "get my things __slot_1"),
		ex(`now => @a.b.q => notify`, "show my things"),
	}
	v := Vocab(examples)
	if v["__slot_1"] {
		t.Error("slots should not count as vocabulary")
	}
	if !v["get"] || !v["show"] {
		t.Error("vocab missing words")
	}
	if DistinctPrograms(examples) != 1 {
		t.Error("identical programs should count once")
	}
	if DistinctCombos(examples) != 1 {
		t.Error("identical combos should count once")
	}
}

func TestNovelty(t *testing.T) {
	pairs := [][2][]string{
		{strings.Fields("get my cat pictures"), strings.Fields("get my cat pictures")},
		{strings.Fields("get my cat pictures"), strings.Fields("fetch my kitty photos")},
	}
	n := Novelty(pairs)
	if n.NewWordRate <= 0 || n.NewWordRate >= 100 {
		t.Errorf("word novelty out of range: %v", n)
	}
	if n.NewBigramRate <= n.NewWordRate {
		t.Errorf("bigram novelty should exceed word novelty here: %+v", n)
	}
}

func TestSetShuffleSplit(t *testing.T) {
	s := Set{Name: "t"}
	for i := 0; i < 10; i++ {
		s.Add(ex(`now => @a.b.q => notify`, "w"))
	}
	a, b := s.Split(0.3)
	if a.Len() != 3 || b.Len() != 7 {
		t.Errorf("split wrong: %d/%d", a.Len(), b.Len())
	}
	s.Shuffle(rand.New(rand.NewSource(1)))
	if s.Len() != 10 {
		t.Error("shuffle lost examples")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := ex(`now => @a.b.q => notify`, "get things")
	c := e.Clone()
	c.Words[0] = "CHANGED"
	c.Program.Action = &thingtalk.Action{Invocation: &thingtalk.Invocation{Class: "x", Function: "y"}}
	if e.Words[0] == "CHANGED" || e.Program.Action.Invocation != nil {
		t.Error("clone shares state")
	}
}
