package runtime

import (
	"testing"

	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func newExec(t testing.TB) *Executor {
	t.Helper()
	lib := thingpedia.Builtin()
	e := NewExecutor(lib)
	RegisterAll(e, lib, 42)
	return e
}

func run(t *testing.T, e *Executor, src string, ticks int) []Notification {
	t.Helper()
	prog, err := thingtalk.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	notifs, err := e.Run(prog, ticks)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return notifs
}

func TestRunFig1(t *testing.T) {
	// Get a cat picture and post it on Facebook with caption "funny cat".
	e := newExec(t)
	prog, err := thingtalk.ParseProgram(
		`now => @com.thecatapi.get => @com.facebook.post_picture param:caption = " funny cat " param:picture_url = param:picture_url`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, 1); err != nil {
		t.Fatal(err)
	}
	if len(e.Actions) == 0 {
		t.Fatal("no action executed")
	}
	act := e.Actions[0]
	if act.Selector != "@com.facebook.post_picture" {
		t.Errorf("wrong action: %s", act.Selector)
	}
	if _, ok := act.In["picture_url"]; !ok {
		t.Error("parameter passing failed: no picture_url")
	}
	if cap := act.In["caption"]; cap.Kind != thingtalk.VString || len(cap.Words) != 2 {
		t.Errorf("caption wrong: %+v", cap)
	}
}

func TestRunNowQueryNotify(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `now => @com.dropbox.list_folder => notify`, 1)
	if len(notifs) != 3 { // list query returns 3 rows
		t.Fatalf("expected 3 notifications, got %d", len(notifs))
	}
	if _, ok := notifs[0].Values["file_name"]; !ok {
		t.Error("missing output parameter")
	}
}

func TestRunFilter(t *testing.T) {
	e := newExec(t)
	all := run(t, e, `now => @com.dropbox.list_folder => notify`, 1)
	some := run(t, e, `now => @com.dropbox.list_folder filter param:file_size > 50 unit:byte => notify`, 1)
	if len(some) >= len(all) {
		t.Skipf("filter did not restrict (%d vs %d); data dependent", len(some), len(all))
	}
}

func TestRunMonitorFiresOnChanges(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `monitor ( @org.thingpedia.weather.current ) => notify`, 5)
	if len(notifs) == 0 {
		t.Fatal("monitor never fired despite changing data")
	}
	for _, n := range notifs {
		if n.Tick == 0 {
			t.Error("monitor should not fire on the initial state")
		}
	}
}

func TestRunTimer(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `timer base = date:now interval = 1 unit:h => @com.thecatapi.get => notify`, 4)
	if len(notifs) != 4*3 {
		t.Fatalf("timer with 1h interval over 4 ticks should fire 4 times x 3 rows, got %d", len(notifs))
	}
}

func TestRunJoinParamPassing(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`, 1)
	if len(notifs) == 0 {
		t.Fatal("join produced nothing")
	}
	if _, ok := notifs[0].Values["translated_text"]; !ok {
		t.Error("join output missing right-side parameter")
	}
	if _, ok := notifs[0].Values["title"]; !ok {
		t.Error("join output missing left-side parameter")
	}
}

func TestRunAggregate(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `now => agg sum param:file_size of ( @com.dropbox.list_folder ) => notify`, 1)
	if len(notifs) != 1 {
		t.Fatalf("aggregation should produce one row, got %d", len(notifs))
	}
	v := notifs[0].Values["file_size"]
	if v.Kind != thingtalk.VMeasure {
		t.Errorf("sum of measures should be a measure: %+v", v)
	}
	count := run(t, e, `now => agg count of ( @com.dropbox.list_folder ) => notify`, 1)
	if len(count) != 1 || count[0].Values["count"].Num != 3 {
		t.Errorf("count wrong: %+v", count)
	}
}

func TestRunEdgeFilter(t *testing.T) {
	e := newExec(t)
	notifs := run(t, e, `edge ( monitor ( @org.thingpedia.weather.current ) ) on param:temperature > 0 unit:C => notify`, 6)
	// Edge fires on false->true transitions only; consecutive trues are
	// suppressed.
	for i := 1; i < len(notifs); i++ {
		if notifs[i].Tick == notifs[i-1].Tick {
			t.Error("edge fired twice in one tick")
		}
	}
}

func TestRunSemanticsPreservedByCanonicalization(t *testing.T) {
	lib := thingpedia.Builtin()
	srcs := []string{
		`now => @com.dropbox.list_folder filter param:is_folder == false and param:file_size > 10 unit:byte => notify`,
		`now => ( @com.dropbox.list_folder filter param:file_size > 10 unit:byte ) filter param:is_folder == false => notify`,
	}
	var outs []string
	for _, src := range srcs {
		e := NewExecutor(lib)
		RegisterAll(e, lib, 7)
		prog, err := thingtalk.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		canon := thingtalk.Canonicalize(prog, lib)
		notifs, err := e.Run(canon, 1)
		if err != nil {
			t.Fatal(err)
		}
		var msgs string
		for _, n := range notifs {
			msgs += n.Message + "\n"
		}
		outs = append(outs, msgs)
	}
	if outs[0] != outs[1] {
		t.Errorf("canonicalization changed execution results:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestRunRejectsIllTyped(t *testing.T) {
	e := newExec(t)
	prog, err := thingtalk.ParseProgram(`now => @com.nosuch.fn => notify`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, 1); err == nil {
		t.Error("ill-typed program should not execute")
	}
}
