package runtime

import (
	"fmt"
	"math/rand"

	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// SimService simulates any class of the skill library with deterministic
// synthetic data: each query returns rows derived from (class, function,
// tick, row index) so that monitorable queries genuinely change over time.
type SimService struct {
	class *thingpedia.Class
	seed  int64
	// RowsPerQuery controls list sizes.
	RowsPerQuery int
}

// NewSimService builds a simulator for one class.
func NewSimService(c *thingpedia.Class, seed int64) *SimService {
	return &SimService{class: c, seed: seed, RowsPerQuery: 3}
}

// RegisterAll installs simulators for every class in the library.
func RegisterAll(e *Executor, lib *thingpedia.Library, seed int64) {
	for _, c := range lib.Classes() {
		e.Register(c.Name, NewSimService(c, seed))
	}
}

// Query implements Service.
func (s *SimService) Query(fn string, in Row, tick int) ([]Row, error) {
	sch, ok := s.class.Function(fn)
	if !ok || sch.Kind != thingtalk.KindQuery {
		return nil, fmt.Errorf("runtime: %s has no query %q", s.class.Name, fn)
	}
	n := 1
	if sch.List {
		n = s.RowsPerQuery
	}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		// Monitorable functions evolve with the tick; static ones do not.
		epoch := 0
		if sch.Monitor {
			epoch = tick
		}
		rng := rand.New(rand.NewSource(s.seed + hash(s.class.Name+fn) + int64(epoch*977+i)))
		row := Row{}
		for _, ps := range sch.OutParams() {
			row[ps.Name] = synthValue(rng, ps.Type, ps.Name, epoch, i)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Do implements Service.
func (s *SimService) Do(fn string, in Row, tick int) error {
	sch, ok := s.class.Function(fn)
	if !ok || sch.Kind != thingtalk.KindAction {
		return fmt.Errorf("runtime: %s has no action %q", s.class.Name, fn)
	}
	for _, ps := range sch.Params {
		if ps.Dir == thingtalk.DirInReq {
			if _, ok := in[ps.Name]; !ok {
				return fmt.Errorf("runtime: %s.%s missing %q", s.class.Name, fn, ps.Name)
			}
		}
	}
	return nil
}

var simWords = []string{
	"report", "kitten", "sunset", "deploy", "budget", "meeting", "storm",
	"release", "garden", "song", "photo", "memo", "quake", "launch",
}

func synthValue(rng *rand.Rand, t thingtalk.Type, param string, epoch, i int) thingtalk.Value {
	switch t := t.(type) {
	case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
		w1 := simWords[rng.Intn(len(simWords))]
		w2 := simWords[rng.Intn(len(simWords))]
		return thingtalk.StringValue(w1, w2, fmt.Sprintf("%d", epoch*10+i))
	case thingtalk.NumberType:
		return thingtalk.NumberValue(float64(rng.Intn(100)))
	case thingtalk.BoolType:
		return thingtalk.BoolValue(rng.Intn(2) == 0)
	case thingtalk.DateType:
		return thingtalk.DateValue(thingtalk.NamedDates[rng.Intn(len(thingtalk.NamedDates))])
	case thingtalk.TimeType:
		return thingtalk.TimeValue(thingtalk.NamedTimes[rng.Intn(len(thingtalk.NamedTimes))])
	case thingtalk.LocationType:
		return thingtalk.LocationValue(thingtalk.NamedLocations[rng.Intn(len(thingtalk.NamedLocations))])
	case thingtalk.MeasureType:
		return thingtalk.MeasureValue(float64(1+rng.Intn(100)), t.Unit)
	case thingtalk.CurrencyType:
		return thingtalk.MeasureValue(float64(1+rng.Intn(500)), "usd")
	case thingtalk.EnumType:
		return thingtalk.EnumValue(t.Values[rng.Intn(len(t.Values))])
	case thingtalk.ArrayType:
		return thingtalk.StringValue(simWords[rng.Intn(len(simWords))])
	}
	return thingtalk.NumberValue(0)
}

func hash(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
