package runtime

import (
	"fmt"

	"repro/internal/thingtalk"
)

// aggregate implements the TT+A operators over result rows.
func aggregate(q *thingtalk.Query, rows []Row) ([]Row, error) {
	if q.AggOp == "count" {
		return []Row{{"count": thingtalk.NumberValue(float64(len(rows)))}}, nil
	}
	var nums []float64
	var unit string
	for _, row := range rows {
		v, ok := row[q.AggParam]
		if !ok {
			return nil, fmt.Errorf("runtime: aggregate over missing output %q", q.AggParam)
		}
		n, u, ok := numeric(v)
		if !ok {
			return nil, fmt.Errorf("runtime: aggregate over non-numeric %q", q.AggParam)
		}
		nums = append(nums, n)
		unit = u
	}
	if len(nums) == 0 {
		return nil, nil
	}
	var out float64
	switch q.AggOp {
	case "sum":
		for _, n := range nums {
			out += n
		}
	case "avg":
		for _, n := range nums {
			out += n
		}
		out /= float64(len(nums))
	case "max":
		out = nums[0]
		for _, n := range nums {
			if n > out {
				out = n
			}
		}
	case "min":
		out = nums[0]
		for _, n := range nums {
			if n < out {
				out = n
			}
		}
	default:
		return nil, fmt.Errorf("runtime: unknown aggregation %q", q.AggOp)
	}
	var v thingtalk.Value
	if unit != "" {
		v = thingtalk.MeasureValue(out, unit)
	} else {
		v = thingtalk.NumberValue(out)
	}
	return []Row{{q.AggParam: v}}, nil
}

// numeric extracts a comparable magnitude (measures normalize to their base
// unit).
func numeric(v thingtalk.Value) (float64, string, bool) {
	switch v.Kind {
	case thingtalk.VNumber:
		return v.Num, "", true
	case thingtalk.VMeasure:
		var total float64
		base := ""
		for _, m := range v.Measures {
			n, ok := thingtalk.ConvertUnit(m.Num, m.Unit)
			if !ok {
				return 0, "", false
			}
			total += n
			base = thingtalk.BaseUnit(m.Unit)
		}
		return total, base, true
	}
	return 0, "", false
}

// compareValues implements the predicate operators over runtime values.
func compareValues(left thingtalk.Value, op string, right thingtalk.Value) (bool, error) {
	switch op {
	case thingtalk.OpEq:
		return valuesEqual(left, right), nil
	case thingtalk.OpGt, thingtalk.OpLt, thingtalk.OpGe, thingtalk.OpLe:
		ln, _, lok := numeric(left)
		rn, _, rok := numeric(right)
		if !lok || !rok {
			// Dates compare by named-edge ordering index.
			li, lok2 := dateIndex(left)
			ri, rok2 := dateIndex(right)
			if !lok2 || !rok2 {
				return false, fmt.Errorf("runtime: cannot order %s and %s", left, right)
			}
			ln, rn = float64(li), float64(ri)
		}
		switch op {
		case thingtalk.OpGt:
			return ln > rn, nil
		case thingtalk.OpLt:
			return ln < rn, nil
		case thingtalk.OpGe:
			return ln >= rn, nil
		default:
			return ln <= rn, nil
		}
	case thingtalk.OpSubstr:
		return containsWords(left, right), nil
	case thingtalk.OpStartsWith:
		return hasAffix(left, right, true), nil
	case thingtalk.OpEndsWith:
		return hasAffix(left, right, false), nil
	case thingtalk.OpContains:
		// Arrays are represented as VString word lists in the simulator;
		// containment is word containment.
		return containsWords(left, right), nil
	}
	return false, fmt.Errorf("runtime: unknown operator %q", op)
}

func valuesEqual(a, b thingtalk.Value) bool {
	if a.Kind == thingtalk.VMeasure || b.Kind == thingtalk.VMeasure {
		an, au, aok := numeric(a)
		bn, bu, bok := numeric(b)
		return aok && bok && au == bu && an == bn
	}
	return a.Equal(b)
}

func dateIndex(v thingtalk.Value) (int, bool) {
	if v.Kind != thingtalk.VDate {
		return 0, false
	}
	for i, n := range thingtalk.NamedDates {
		if n == v.Name {
			return i, true
		}
	}
	return 0, false
}

func containsWords(haystack, needle thingtalk.Value) bool {
	if haystack.Kind != thingtalk.VString || needle.Kind != thingtalk.VString {
		return false
	}
	h := " " + join(haystack.Words) + " "
	n := " " + join(needle.Words) + " "
	return len(n) <= len(h) && indexString(h, n) >= 0
}

func hasAffix(s, affix thingtalk.Value, prefix bool) bool {
	if s.Kind != thingtalk.VString || affix.Kind != thingtalk.VString {
		return false
	}
	h := join(s.Words)
	n := join(affix.Words)
	if len(n) > len(h) {
		return false
	}
	if prefix {
		return h[:len(n)] == n
	}
	return h[len(h)-len(n):] == n
}

func join(words []string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func indexString(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
