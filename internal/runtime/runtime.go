// Package runtime executes canonical ThingTalk programs (Fig. 1 of the
// paper: VAPL code is directly executable by the assistant). Services are
// simulated: each skill exposes deterministic synthetic data that changes
// over a discrete timeline, which exercises monitors, edge filters, timers,
// filters, joins with parameter passing, implicit list traversal,
// aggregation and actions exactly as the real Thingpedia runtime would.
package runtime

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/thingtalk"
)

// Row is one result record: output parameter name to value.
type Row map[string]thingtalk.Value

// Service simulates one skill.
type Service interface {
	// Query returns the current results of a query function at a tick.
	Query(fn string, in Row, tick int) ([]Row, error)
	// Do performs an action.
	Do(fn string, in Row, tick int) error
}

// Notification is one delivery to the user.
type Notification struct {
	Tick    int
	Values  Row
	Message string
}

// ActionLog records an executed action.
type ActionLog struct {
	Tick     int
	Selector string
	In       Row
}

// Executor runs programs against registered services.
type Executor struct {
	schemas  thingtalk.SchemaSource
	services map[string]Service

	Notifications []Notification
	Actions       []ActionLog
}

// NewExecutor returns an executor over a schema source.
func NewExecutor(schemas thingtalk.SchemaSource) *Executor {
	return &Executor{schemas: schemas, services: map[string]Service{}}
}

// Register installs the service for a class.
func (e *Executor) Register(class string, s Service) { e.services[class] = s }

// Run executes a program over ticks timeline steps (a "now" program runs
// once regardless). It returns the notifications produced.
func (e *Executor) Run(p *thingtalk.Program, ticks int) ([]Notification, error) {
	if err := thingtalk.Typecheck(p, e.schemas); err != nil {
		return nil, err
	}
	start := len(e.Notifications)
	switch p.Stream.Kind {
	case thingtalk.StreamNow:
		if err := e.fire(p, Row{}, 0); err != nil {
			return nil, err
		}
	case thingtalk.StreamTimer, thingtalk.StreamAtTimer:
		interval := 1
		if p.Stream.Kind == thingtalk.StreamTimer {
			if iv, ok := intervalTicks(p.Stream.Interval); ok {
				interval = iv
			}
		}
		for t := 0; t < ticks; t += interval {
			if err := e.fire(p, Row{}, t); err != nil {
				return nil, err
			}
		}
	case thingtalk.StreamMonitor, thingtalk.StreamEdge:
		if err := e.runMonitored(p, ticks); err != nil {
			return nil, err
		}
	}
	return e.Notifications[start:], nil
}

// intervalTicks maps a timer interval to ticks: one tick per hour of
// simulated time, minimum 1.
func intervalTicks(v thingtalk.Value) (int, bool) {
	if v.Kind != thingtalk.VMeasure || len(v.Measures) == 0 {
		return 0, false
	}
	var total float64
	for _, m := range v.Measures {
		ms, ok := thingtalk.ConvertUnit(m.Num, m.Unit)
		if !ok {
			return 0, false
		}
		total += ms
	}
	ticks := int(total / 3600e3)
	if ticks < 1 {
		ticks = 1
	}
	return ticks, true
}

// runMonitored polls the monitored query each tick, firing on changes (and,
// for edge streams, on false→true transitions of the predicate).
func (e *Executor) runMonitored(p *thingtalk.Program, ticks int) error {
	inner := p.Stream
	var edgePreds []*thingtalk.Predicate
	for inner.Kind == thingtalk.StreamEdge {
		edgePreds = append(edgePreds, inner.Predicate)
		inner = inner.Inner
	}
	if inner.Kind != thingtalk.StreamMonitor {
		return fmt.Errorf("runtime: unsupported stream")
	}
	seen := map[string]bool{}
	prevEdge := false
	for t := 0; t < ticks; t++ {
		rows, err := e.query(inner.Monitor, Row{}, t)
		if err != nil {
			return err
		}
		for _, row := range rows {
			key := rowKey(row, inner.MonitorOn)
			if seen[key] {
				continue
			}
			seen[key] = true
			if t == 0 && len(edgePreds) == 0 {
				// Monitors report changes, not the initial state.
				continue
			}
			edgeOK := true
			for _, pred := range edgePreds {
				v, err := e.evalPred(pred, row, t)
				if err != nil {
					return err
				}
				if !v {
					edgeOK = false
				}
			}
			if len(edgePreds) > 0 {
				// Edge semantics: fire on false→true transitions; the
				// predicate is assumed previously false for the first value.
				if !edgeOK || prevEdge {
					prevEdge = edgeOK
					continue
				}
				prevEdge = edgeOK
			}
			if err := e.fire(p, row, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// fire evaluates the query clause (if any) under the stream's bindings and
// performs the action for each result row.
func (e *Executor) fire(p *thingtalk.Program, streamRow Row, tick int) error {
	rows := []Row{streamRow}
	if p.Query != nil {
		var err error
		rows, err = e.queryWithEnv(p.Query, streamRow, tick)
		if err != nil {
			return err
		}
	}
	for _, row := range rows {
		merged := mergeRows(streamRow, row)
		if p.Action.Notify {
			e.Notifications = append(e.Notifications, Notification{
				Tick:    tick,
				Values:  merged,
				Message: formatRow(merged),
			})
			continue
		}
		inv := p.Action.Invocation
		in, err := e.resolveInputs(inv, merged, tick)
		if err != nil {
			return err
		}
		svc, ok := e.services[inv.Class]
		if !ok {
			return fmt.Errorf("runtime: no service for %s", inv.Class)
		}
		if err := svc.Do(inv.Function, in, tick); err != nil {
			return err
		}
		e.Actions = append(e.Actions, ActionLog{Tick: tick, Selector: inv.Selector(), In: in})
	}
	return nil
}

// queryWithEnv evaluates q where env supplies upstream outputs for
// parameter passing.
func (e *Executor) queryWithEnv(q *thingtalk.Query, env Row, tick int) ([]Row, error) {
	return e.query(q, env, tick)
}

func (e *Executor) query(q *thingtalk.Query, env Row, tick int) ([]Row, error) {
	switch q.Kind {
	case thingtalk.QueryInvocation:
		inv := q.Invocation
		in, err := e.resolveInputs(inv, env, tick)
		if err != nil {
			return nil, err
		}
		svc, ok := e.services[inv.Class]
		if !ok {
			return nil, fmt.Errorf("runtime: no service for %s", inv.Class)
		}
		return svc.Query(inv.Function, in, tick)
	case thingtalk.QueryFilter:
		rows, err := e.query(q.Inner, env, tick)
		if err != nil {
			return nil, err
		}
		var out []Row
		for _, row := range rows {
			ok, err := e.evalPred(q.Predicate, row, tick)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		return out, nil
	case thingtalk.QueryJoin:
		left, err := e.query(q.Inner, env, tick)
		if err != nil {
			return nil, err
		}
		var out []Row
		for _, lrow := range left {
			renv := mergeRows(env, lrow)
			right := q.Right
			// Apply join parameter passing by extending the right query's
			// environment.
			rrows, err := e.queryJoinRight(right, q.JoinParams, renv, tick)
			if err != nil {
				return nil, err
			}
			for _, rrow := range rrows {
				out = append(out, mergeRows(lrow, rrow))
			}
		}
		return out, nil
	case thingtalk.QueryAggregate:
		rows, err := e.query(q.Inner, env, tick)
		if err != nil {
			return nil, err
		}
		return aggregate(q, rows)
	}
	return nil, fmt.Errorf("runtime: invalid query")
}

// queryJoinRight injects the join's on-assignments into the right-most
// invocation of the right operand.
func (e *Executor) queryJoinRight(q *thingtalk.Query, on []thingtalk.InputParam, env Row, tick int) ([]Row, error) {
	if len(on) == 0 {
		return e.query(q, env, tick)
	}
	clone := q.Clone()
	target := rightmostInvocation(clone)
	if target == nil {
		return nil, fmt.Errorf("runtime: join without target")
	}
	target.In = append(target.In, on...)
	return e.query(clone, env, tick)
}

func rightmostInvocation(q *thingtalk.Query) *thingtalk.Invocation {
	switch q.Kind {
	case thingtalk.QueryInvocation:
		return q.Invocation
	case thingtalk.QueryFilter, thingtalk.QueryAggregate:
		return rightmostInvocation(q.Inner)
	case thingtalk.QueryJoin:
		return rightmostInvocation(q.Right)
	}
	return nil
}

// resolveInputs materializes an invocation's inputs, resolving parameter
// passing against env.
func (e *Executor) resolveInputs(inv *thingtalk.Invocation, env Row, tick int) (Row, error) {
	in := Row{}
	for _, ip := range inv.In {
		if ip.Value.Kind == thingtalk.VVarRef {
			v, ok := env[ip.Value.Name]
			if !ok {
				return nil, fmt.Errorf("runtime: unbound parameter %q", ip.Value.Name)
			}
			in[ip.Name] = v
			continue
		}
		in[ip.Name] = ip.Value
	}
	return in, nil
}

func (e *Executor) evalPred(p *thingtalk.Predicate, row Row, tick int) (bool, error) {
	switch p.Kind {
	case thingtalk.PredTrue:
		return true, nil
	case thingtalk.PredFalse:
		return false, nil
	case thingtalk.PredNot:
		v, err := e.evalPred(p.Children[0], row, tick)
		return !v, err
	case thingtalk.PredAnd:
		for _, ch := range p.Children {
			v, err := e.evalPred(ch, row, tick)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case thingtalk.PredOr:
		for _, ch := range p.Children {
			v, err := e.evalPred(ch, row, tick)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case thingtalk.PredAtom:
		v, ok := row[p.Param]
		if !ok {
			return false, fmt.Errorf("runtime: filter on missing output %q", p.Param)
		}
		return compareValues(v, p.Op, p.Value)
	case thingtalk.PredExternal:
		rows, err := e.query(&thingtalk.Query{Kind: thingtalk.QueryInvocation, Invocation: p.External}, row, tick)
		if err != nil {
			return false, err
		}
		for _, r := range rows {
			ok, err := e.evalPred(p.InnerPred, r, tick)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("runtime: invalid predicate")
}

func mergeRows(a, b Row) Row {
	out := Row{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func rowKey(row Row, only []string) string {
	keys := make([]string, 0, len(row))
	if len(only) > 0 {
		keys = only
	} else {
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, row[k].String())
	}
	return b.String()
}

func formatRow(row Row) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s: %s", k, describeValue(row[k])))
	}
	return strings.Join(parts, ", ")
}

func describeValue(v thingtalk.Value) string {
	switch v.Kind {
	case thingtalk.VString:
		return strings.Join(v.Words, " ")
	default:
		return v.String()
	}
}
