package ifttt

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

func seedExamples(n int) []dataset.Example {
	prog, err := thingtalk.ParseProgram(`monitor ( @a.b.q ) => @c.d.act param:msg = param:text`)
	if err != nil {
		panic(err)
	}
	var out []dataset.Example
	for i := 0; i < n; i++ {
		out = append(out, dataset.Example{
			Words:   strings.Fields("when my feed changes , post __slot_1 saying __slot_2"),
			Program: prog.Clone(),
		})
	}
	return out
}

func TestGenerateInjectsArtifacts(t *testing.T) {
	raw := Generate(seedExamples(200), 1)
	counts := CleanupRuleCounts(raw)
	for _, k := range []string{"second-person", "blank", "ui-text"} {
		if counts[k] == 0 {
			t.Errorf("artifact %q never injected: %v", k, counts)
		}
	}
}

func TestCleanUndoesEveryRule(t *testing.T) {
	raw := Generate(seedExamples(300), 2)
	cleaned := Clean(raw)
	if len(cleaned) != len(raw) {
		t.Fatal("examples lost in cleanup")
	}
	for i := range cleaned {
		s := cleaned[i].Sentence()
		if strings.Contains(s, "your") {
			t.Errorf("second-person survived: %s", s)
		}
		if strings.Contains(s, "___") {
			t.Errorf("blank survived: %s", s)
		}
		if strings.Contains(s, "with this button") {
			t.Errorf("ui text survived: %s", s)
		}
		// Slots restored so parameters can be instantiated.
		if strings.Count(s, "__slot_") != 2 {
			t.Errorf("slots not restored: %s", s)
		}
	}
}
