// Package ifttt simulates the IFTTT evaluation corpus of Section 5.1: applet
// descriptions written by rule authors (high-level, under-specified, often
// second-person) and the Table 2 cleanup rules that adapt them into
// first-person commands a virtual assistant can be expected to interpret.
package ifttt

import (
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// RawDescription is a simulated applet description before cleanup, paired
// with the example it describes.
type RawDescription struct {
	Words   []string
	Example dataset.Example
	// Artifacts records which description artifacts were injected, so
	// tests can verify each cleanup rule fires.
	Artifacts []string
}

// Generate turns synthesized compound seeds into IFTTT-style descriptions:
// second-person pronouns, "___" placeholders, missing device names, UI
// boilerplate and under-specified parameters.
func Generate(seeds []dataset.Example, seed int64) []RawDescription {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RawDescription, 0, len(seeds))
	for i := range seeds {
		e := seeds[i].Clone()
		e.Group = dataset.GroupEval
		words := append([]string(nil), e.Words...)
		var artifacts []string

		// Second person: my -> your.
		if idx := indexOf(words, "my"); idx >= 0 && rng.Intn(2) == 0 {
			words[idx] = "your"
			artifacts = append(artifacts, "second-person")
		}
		// Placeholder blanks: replace one slot with ___ (the Table 2
		// "Replace placeholders with specific values" case inverts this).
		for j, w := range words {
			if strings.HasPrefix(w, "__slot_") && rng.Intn(3) == 0 {
				words[j] = "___:" + w // blank remembering its slot
				artifacts = append(artifacts, "blank")
				break
			}
		}
		// UI boilerplate.
		if rng.Intn(3) == 0 {
			words = append(words, "with", "this", "button")
			artifacts = append(artifacts, "ui-text")
		}
		// Under-specified person: "message my partner" style.
		if idx := indexOf(words, "saying"); idx > 0 && rng.Intn(4) == 0 {
			// Drop the message content entirely.
			for j := idx; j < len(words); j++ {
				if strings.HasPrefix(words[j], "__slot_") {
					words[j] = "___:" + words[j]
					artifacts = append(artifacts, "under-specified")
					break
				}
			}
		}
		out = append(out, RawDescription{Words: words, Example: e, Artifacts: artifacts})
	}
	return out
}

// Clean applies the Table 2 cleanup rules and returns command-shaped
// evaluation examples:
//
//  1. second-person pronouns become first-person;
//  2. "___" placeholders are filled with specific values (here: restored
//     to their parameter slots, later instantiated with real values);
//  3. the device name is appended when the command would otherwise be
//     ambiguous (handled upstream: our seeds keep the device wording);
//  4. UI-related explanations are removed;
//  5. under-specified parameters are replaced with real values (same
//     mechanism as rule 2).
func Clean(raw []RawDescription) []dataset.Example {
	out := make([]dataset.Example, 0, len(raw))
	for i := range raw {
		words := append([]string(nil), raw[i].Words...)
		cleaned := make([]string, 0, len(words))
		for j := 0; j < len(words); j++ {
			w := words[j]
			switch {
			case w == "your":
				cleaned = append(cleaned, "my")
			case strings.HasPrefix(w, "___:"):
				cleaned = append(cleaned, strings.TrimPrefix(w, "___:"))
			case w == "with" && j+2 < len(words) && words[j+1] == "this" && words[j+2] == "button":
				j += 2
			default:
				cleaned = append(cleaned, w)
			}
		}
		e := raw[i].Example.Clone()
		e.Words = cleaned
		out = append(out, e)
	}
	return out
}

// CleanupRuleCounts reports how many descriptions each Table 2 rule applied
// to, keyed by artifact name.
func CleanupRuleCounts(raw []RawDescription) map[string]int {
	out := map[string]int{}
	for i := range raw {
		for _, a := range raw[i].Artifacts {
			out[a]++
		}
	}
	return out
}

func indexOf(words []string, w string) int {
	for i, x := range words {
		if x == w {
			return i
		}
	}
	return -1
}
