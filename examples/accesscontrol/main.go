// Access-control case study (Section 6.2): synthesize TACL policies over
// the skill library, train a policy parser, and check natural-language
// policies like "my secretary is allowed to see my emails".
package main

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/tacl"
	"repro/internal/thingpedia"
)

func main() {
	lib := thingpedia.Builtin()
	data := tacl.Build(lib, 24, 3, 150, 3, 1)
	fmt.Printf("tacl dataset: %d train, %d paraphrase test, %d cheatsheet\n",
		len(data.Train), len(data.ParaTest), len(data.Cheatsheet))

	pairs := tacl.ToPairs(data.Train)
	var lm [][]string
	for _, p := range pairs {
		lm = append(lm, p.Tgt)
	}
	cfg := model.Config{
		EmbedDim: 32, HiddenDim: 48, LR: 5e-3, Epochs: 6, EvalEvery: 100000,
		PointerGen: true, PretrainLM: true, LMSteps: 300, MaxDecodeLen: 48,
		MinVocabCount: 4, Seed: 1,
	}
	parser := model.Train(pairs, tacl.ToPairs(data.ParaTest), lm, cfg)

	for i := 0; i < 3 && i < len(data.ParaTest); i++ {
		e := data.ParaTest[i]
		toks := parser.Parse(e.Words)
		fmt.Printf("\npolicy:  %s\nparsed:  %s\ngold:    %s\n",
			e.Sentence(), strings.Join(toks, " "), strings.Join(e.Policy.Tokens(), " "))
	}

	var dec eval.Decoder = parser
	fmt.Printf("\nparaphrase-split accuracy: %.1f%%\n", tacl.Evaluate(dec, data.ParaTest, lib))
	fmt.Printf("cheatsheet accuracy:       %.1f%%\n", tacl.Evaluate(dec, data.Cheatsheet, lib))
}
