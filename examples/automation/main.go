// Automation example: express the paper's flagship compound commands
// directly in ThingTalk, canonicalize them, confirm them in English, and run
// them on the simulated device timeline — monitors, edge filters, timers,
// joins and aggregation (TT+A).
package main

import (
	"fmt"
	"log"

	"repro/internal/runtime"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

var programs = []string{
	// Retweet PLDI (Section 2.3).
	`monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`,
	// Temperature edge alert (Section 2.3).
	`edge ( monitor ( @org.thingpedia.weather.current ) ) on param:temperature < 60 unit:F => notify`,
	// Translate the New York Times (Section 2.3).
	`now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`,
	// Hourly cat pictures.
	`timer base = date:now interval = 1 unit:h => @com.thecatapi.get => notify`,
	// Total folder size (Section 6.3, TT+A).
	`now => agg sum param:file_size of ( @com.dropbox.list_folder ) => notify`,
}

func main() {
	lib := thingpedia.Builtin()
	exec := runtime.NewExecutor(lib)
	runtime.RegisterAll(exec, lib, 99)

	for _, src := range programs {
		prog, err := thingtalk.ParseProgram(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := thingtalk.Typecheck(prog, lib); err != nil {
			log.Fatal(err)
		}
		canon := thingtalk.Canonicalize(prog, lib)
		fmt.Println("program:", canon)
		fmt.Println("confirm:", thingtalk.Describe(canon, lib))
		notifs, err := exec.Run(canon, 4)
		if err != nil {
			log.Fatal(err)
		}
		for i, n := range notifs {
			if i >= 3 {
				fmt.Printf("  ... %d more notifications\n", len(notifs)-3)
				break
			}
			fmt.Printf("  [t=%d] %s\n", n.Tick, n.Message)
		}
		fmt.Println()
	}
	fmt.Printf("actions executed: %d\n", len(exec.Actions))
}
