// Quickstart: build a semantic parser for the built-in skill library with
// the Genie pipeline, parse a natural-language command, confirm it in
// canonical English, and execute it against the simulated services — the
// full loop of Fig. 1 of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/genie"
	"repro/internal/nltemplate"
	"repro/internal/runtime"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func main() {
	lib := thingpedia.Builtin()

	// 1. Data acquisition: synthesis + simulated paraphrasing + expansion.
	data := genie.BuildData(lib, nltemplate.DefaultOptions, genie.Unit, 1)
	fmt.Printf("synthesized %d sentences, collected %d paraphrases\n",
		len(data.Synth), len(data.Paraphrases))

	// 2. Train the neural semantic parser (pointer-generator + program LM).
	parser := data.Train(genie.TrainOptions{
		Strategy: genie.StrategyGenie,
		Topt:     genie.CanonicalTargets,
		Model:    genie.Unit.Model,
		Seed:     1,
	})

	// 3. Parse a user command.
	utterance := []string{"get", "a", "cat", "picture"}
	tokens := parser.Parse(utterance)
	prog, err := thingtalk.ParseTokens(tokens, thingtalk.ParseOptions{Schemas: lib})
	if err != nil {
		log.Fatalf("model output unparseable: %v", err)
	}
	if err := thingtalk.Typecheck(prog, lib); err != nil {
		log.Fatalf("model output ill-typed: %v", err)
	}
	prog = thingtalk.Canonicalize(prog, lib)
	fmt.Println("\nuser:     ", "get a cat picture")
	fmt.Println("thingtalk:", prog)
	fmt.Println("confirm:  ", thingtalk.Describe(prog, lib))

	// 4. Execute against the simulated Thingpedia services.
	exec := runtime.NewExecutor(lib)
	runtime.RegisterAll(exec, lib, 42)
	notifs, err := exec.Run(prog, 1)
	if err != nil {
		log.Fatalf("execution failed: %v", err)
	}
	for _, n := range notifs {
		fmt.Println("result:   ", n.Message)
	}

	// 5. And the full Fig. 1 compound command, pre-parsed.
	fig1, _ := thingtalk.ParseProgram(
		`now => @com.thecatapi.get => @com.facebook.post_picture param:caption = " funny cat " param:picture_url = param:picture_url`)
	if err := thingtalk.Typecheck(fig1, lib); err != nil {
		log.Fatal(err)
	}
	if _, err := exec.Run(thingtalk.Canonicalize(fig1, lib), 1); err != nil {
		log.Fatal(err)
	}
	for _, a := range exec.Actions {
		fmt.Println("executed: ", a.Selector)
	}
}
