// Spotify case study (Section 6.1): generate a parser for the comprehensive
// music skill — 15 queries and 17 actions with quote-free song and artist
// parameters — and show that the model distinguishes "play <song>" from
// "play <artist>" by the parameter value alone.
package main

import (
	"fmt"
	"strings"

	"repro/internal/genie"
	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func main() {
	lib := thingpedia.SpotifyOnly()
	st := lib.Stats()
	fmt.Printf("spotify skill: %d queries, %d actions, %d templates\n",
		st.Queries, st.Actions, st.Primitives)

	data := genie.BuildData(lib, nltemplate.Options{GenericFilters: true, MaxFilterParams: 3}, genie.Unit, 7)
	parser := data.Train(genie.TrainOptions{
		Strategy: genie.StrategyGenie,
		Topt:     genie.CanonicalTargets,
		Model:    genie.Unit.Model,
		Seed:     7,
	})

	for _, cmd := range []string{
		"play shake it off",
		"play taylor swift",
		"add shake it off to the playlist dance dance revolution",
		"skip this song",
	} {
		words := strings.Fields(cmd)
		toks := parser.Parse(words)
		status := "unparseable"
		if prog, err := thingtalk.ParseTokens(toks, thingtalk.ParseOptions{Schemas: lib}); err == nil {
			if thingtalk.Typecheck(prog, lib) == nil {
				status = thingtalk.Canonicalize(prog, lib).String()
			} else {
				status = "ill-typed: " + strings.Join(toks, " ")
			}
		}
		fmt.Printf("\nuser:  %s\nmodel: %s\n", cmd, status)
	}

	rep := data.Evaluate(parser, data.Cheatsheet)
	fmt.Printf("\ncheatsheet accuracy at unit scale: %.1f%% program, %.1f%% function\n",
		rep.ProgramAccuracy(), rep.FunctionAccuracy())
}
