// Command benchjson converts `go test -bench` output into a machine-readable
// JSON record, and derives per-example speedups between benchmark legs whose
// names differ only in a recognized axis (B=1 vs B=16, sequential vs
// batched). CI uses it to publish the minibatching trajectory
// (BENCH_PR4.json); it reads stdin or -in and writes stdout or -out.
//
//	go test -bench 'TrainStepBatched|BatchedDecode' -benchtime 20x . | benchjson -out BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count, and every reported
// metric (ns/op, B/op, allocs/op plus custom ones like ns/example).
type Result struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Speedup relates two legs of one benchmark family on a shared metric.
type Speedup struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Base      string  `json:"base"`
	Against   string  `json:"against"`
	Speedup   float64 `json:"speedup"`
}

// File is the emitted document.
type File struct {
	Note       string    `json:"note,omitempty"`
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse extracts benchmark results from go test -bench output.
func parse(lines []string) []Result {
	var out []Result
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		r := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// legPairs are the sub-benchmark leg names we derive speedups across: the
// slow (base) leg first, the fast leg second.
var legPairs = [][2]string{
	{"/B=1", "/B=16"},
	{"/sequential", "/batched"},
}

// speedups pairs legs of the same benchmark family and reports base/fast
// ratios on the most specific shared per-item metric (ns/example or
// ns/sentence when present, ns/op otherwise).
func speedups(results []Result) []Speedup {
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	metricOf := func(r Result) string {
		for _, m := range []string{"ns/example", "ns/sentence"} {
			if _, ok := r.Metrics[m]; ok {
				return m
			}
		}
		return "ns/op"
	}
	var out []Speedup
	for _, r := range results {
		for _, lp := range legPairs {
			if !strings.HasSuffix(r.Name, lp[0]) {
				continue
			}
			fast, ok := byName[strings.TrimSuffix(r.Name, lp[0])+lp[1]]
			if !ok {
				continue
			}
			m := metricOf(r)
			base, ok1 := r.Metrics[m]
			against, ok2 := fast.Metrics[m]
			if ok1 && ok2 && against > 0 {
				out = append(out, Speedup{
					Benchmark: strings.TrimPrefix(r.Name, "Benchmark"),
					Metric:    m, Base: r.Name, Against: fast.Name,
					Speedup: base / against,
				})
			}
		}
	}
	return out
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the document")
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	var lines []string
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	results := parse(lines)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	doc := File{Note: *note, Benchmarks: results, Speedups: speedups(results)}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
