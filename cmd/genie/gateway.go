package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/gateway"
)

// gatewayConfig is the -static-config file shape: the backend list plus any
// of the tuning knobs. Flags set explicitly on the command line override the
// file.
type gatewayConfig struct {
	Backends      []string `json:"backends"`
	Replication   int      `json:"replication,omitempty"`
	ProbeMS       int      `json:"probe_ms,omitempty"`
	FailThreshold int      `json:"fail_threshold,omitempty"`
	Retries       int      `json:"retries,omitempty"`
	Hedge         bool     `json:"hedge,omitempty"`
	HedgeAfterMS  int      `json:"hedge_after_ms,omitempty"`
	Fallback      bool     `json:"fallback,omitempty"`
}

// cmdGateway runs the fault-tolerant routing tier in front of N fleet
// processes: consistent-hash routing by skill with R-way replication,
// health-checked membership with circuit-breaker readmission, shed-aware
// retry and optional hedging.
func cmdGateway(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	backends := fs.String("backends", "", "comma-separated fleet backend base URLs")
	staticConfig := fs.String("static-config", "", "JSON config file (flags set explicitly override it)")
	addr := fs.String("addr", ":8090", "listen address")
	replication := fs.Int("replication", 2, "distinct backends per skill on the hash ring")
	probe := fs.Duration("probe", 500*time.Millisecond, "health-probe interval")
	failThreshold := fs.Int("fail-threshold", 3, "consecutive probe/request failures before ejection")
	retries := fs.Int("retries", 2, "retry budget: extra attempts after a failed first one")
	hedge := fs.Bool("hedge", false, "hedge slow requests to a second replica")
	hedgeAfter := fs.Duration("hedge-after", 0, "fixed hedge delay (0 derives 2x probed p99)")
	fallback := fs.Bool("fallback", false, "route degraded skills to any healthy backend's scored fallback")
	seed := fs.Int64("seed", 1, "retry-jitter seed")
	fs.Parse(args)

	var addrs []string
	if *backends != "" {
		addrs = strings.Split(*backends, ",")
	}
	if *staticConfig != "" {
		raw, err := os.ReadFile(*staticConfig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genie: %v\n", err)
			os.Exit(1)
		}
		var cfg gatewayConfig
		if err := json.Unmarshal(raw, &cfg); err != nil {
			fmt.Fprintf(os.Stderr, "genie: %s: %v\n", *staticConfig, err)
			os.Exit(1)
		}
		// The file supplies defaults; explicitly-set flags win.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["backends"] && len(cfg.Backends) > 0 {
			addrs = cfg.Backends
		}
		if !set["replication"] && cfg.Replication > 0 {
			*replication = cfg.Replication
		}
		if !set["probe"] && cfg.ProbeMS > 0 {
			*probe = time.Duration(cfg.ProbeMS) * time.Millisecond
		}
		if !set["fail-threshold"] && cfg.FailThreshold > 0 {
			*failThreshold = cfg.FailThreshold
		}
		if !set["retries"] && cfg.Retries > 0 {
			*retries = cfg.Retries
		}
		if !set["hedge"] {
			*hedge = *hedge || cfg.Hedge
		}
		if !set["hedge-after"] && cfg.HedgeAfterMS > 0 {
			*hedgeAfter = time.Duration(cfg.HedgeAfterMS) * time.Millisecond
		}
		if !set["fallback"] {
			*fallback = *fallback || cfg.Fallback
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "genie: gateway needs -backends or -static-config")
		os.Exit(2)
	}

	g := gateway.New(addrs, gateway.Options{
		Replication:        *replication,
		ProbeInterval:      *probe,
		FailThreshold:      *failThreshold,
		RetryBudget:        *retries,
		Hedge:              *hedge,
		HedgeAfter:         *hedgeAfter,
		CrossSkillFallback: *fallback,
		Seed:               *seed,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "genie: "+format+"\n", a...)
		},
	})
	defer g.Close()
	fmt.Fprintf(os.Stderr, "genie: gateway on %s over %d backends (replication=%d probe=%s retries=%d hedge=%t fallback=%t)\n",
		*addr, len(addrs), *replication, *probe, *retries, *hedge, *fallback)
	if err := http.ListenAndServe(*addr, g.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
}
