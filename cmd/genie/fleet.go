package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// cmdFleet runs the multi-skill parser fleet: one trained parser per
// <skill>.tt library in -libdir, each serving behind its own micro-batching
// shard with bounded-queue admission control, hot-swapped when the watcher
// sees the library's checksum change.
func cmdFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	libdir := fs.String("libdir", "", "skill-library directory (one <skill>.tt per skill)")
	watch := fs.Duration("watch", 2*time.Second, "library watch interval (0 disables hot reload)")
	maxQueue := fs.Int("maxqueue", 0, "per-skill admission queue bound (0 = 8x batch, negative = unbounded)")
	cacheDir := fs.String("cache", "", "snapshot-cache directory keyed by skill-library checksum")
	ckptDir := fs.String("checkpoint", "", "training-checkpoint directory (restarts resume in-flight training)")
	ckptSteps := fs.Int("ckpt-steps", 25, "mid-epoch checkpoint cadence in optimizer steps (0 = epoch boundaries only)")
	scaleName := scaleFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	strategyName := fs.String("strategy", "genie", "training strategy")
	maxSteps := fs.Int("maxsteps", 0, "cap on training steps (0 = scale preset)")
	lmSteps := fs.Int("lmsteps", -1, "LM pre-training steps (-1 = scale preset, 0 = skip)")
	batchSize := fs.Int("batchsize", 0, "training minibatch size (0 = scale preset)")
	bucket := fs.Bool("bucket", false, "length-bucket training minibatches (cuts padding waste)")
	dialogue := fs.Bool("dialogue", false, "train contextual parsers on synthesized multi-turn sessions; X-Genie-Session requests then resolve follow-ups against the session's previous program")
	sessionCap := fs.Int("sessions", 0, "per-skill dialogue session-store capacity (0 = default)")
	trainWorkers := fs.Int("train-workers", 1, "concurrent background training runs")
	addr := fs.String("addr", ":8080", "listen address")
	batch := fs.Int("batch", 8, "per-skill micro-batch size")
	wait := fs.Duration("wait", 2*time.Millisecond, "micro-batch gather window")
	workers := fs.Int("serve-workers", 0, "decode workers per skill (0 = all CPUs)")
	beam := fs.Int("beam", 1, "beam width (1 = greedy)")
	adaptive := fs.Bool("adaptive", false, "confidence-routed decode: greedy first, escalate to -beam below each skill's calibrated threshold")
	fs.Parse(args)
	if *libdir == "" {
		fmt.Fprintln(os.Stderr, "genie: fleet needs -libdir")
		os.Exit(2)
	}
	scale := resolveScale(*scaleName)
	strategy, ok := strategyByName(*strategyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "genie: unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "genie: "+format+"\n", a...)
	}
	var cache *serve.Cache
	if *cacheDir != "" {
		cache = serve.NewCacheWith(serve.CacheOptions{
			Store: durable.Open(*cacheDir, durable.Options{Logf: logf}),
			Logf:  logf,
		})
	}
	var ckpts *durable.Store
	if *ckptDir != "" {
		ckpts = durable.Open(*ckptDir, durable.Options{Logf: logf})
	}
	cfg := fleet.Config{
		LibDir: *libdir,
		Watch:  *watch,
		Serve: serve.Options{
			MaxBatch: *batch,
			MaxWait:  *wait,
			Workers:  *workers,
			Beam:     *beam,
			MaxQueue: *maxQueue,
			Adaptive: *adaptive,
		},
		Train: func(name string, lib *thingpedia.Library) (*model.Parser, error) {
			var ck model.CheckpointStore
			if ckpts != nil {
				ck = ckpts.Key("skill-" + name)
			}
			p, d := trainParserLib(lib, scale, strategy, *seed, *maxSteps, *lmSteps, *batchSize, *bucket, *dialogue, ck, *ckptSteps)
			if *adaptive && *beam > 1 {
				calibrateParser(p, d, *beam)
			}
			return p, nil
		},
		Cache: cache,
		CacheExtra: []string{
			scale.Name, strategy.String(),
			fmt.Sprintf("seed=%d", *seed), fmt.Sprintf("maxsteps=%d", *maxSteps),
			fmt.Sprintf("lmsteps=%d", *lmSteps), fmt.Sprintf("batchsize=%d", *batchSize),
			fmt.Sprintf("bucket=%t", *bucket),
			fmt.Sprintf("dialogue=%t", *dialogue),
			fmt.Sprintf("calibrate=%t:%d", *adaptive, *beam),
		},
		SessionCapacity: *sessionCap,
		TrainWorkers:    *trainWorkers,
		Logf:            logf,
	}
	reg, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
	srv := fleet.NewServer(reg)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "genie: fleet serving %s on %s (watch=%s batch=%d wait=%s beam=%d adaptive=%t maxqueue=%d)\n",
		*libdir, *addr, *watch, *batch, *wait, *beam, *adaptive, *maxQueue)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
}
