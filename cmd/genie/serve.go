package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/genie"
	"repro/internal/grammar"
	"repro/internal/model"
	"repro/internal/nltemplate"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

func strategyByName(name string) (genie.Strategy, bool) {
	for _, s := range []genie.Strategy{
		genie.StrategyGenie, genie.StrategySynthesizedOnly,
		genie.StrategyParaphraseOnly, genie.StrategyBaseline,
	} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// trainParser runs the full data pipeline and parser training over the
// built-in library for one (scale, strategy, seed) recipe.
func trainParser(scale genie.Scale, strategy genie.Strategy, seed int64, maxSteps, lmSteps, batchSize int, bucket bool) (*model.Parser, *genie.Data) {
	return trainParserLib(thingpedia.Builtin(), scale, strategy, seed, maxSteps, lmSteps, batchSize, bucket, false, nil, 0)
}

// trainParserLib is trainParser over an arbitrary skill library (the fleet
// trains one parser per library file); maxSteps/lmSteps (-1 = keep preset)
// let the CI smoke tests cap the run, batchSize > 1 trains on shuffled
// minibatches through the batched kernels (0 = scale preset), and bucket
// length-buckets those minibatches to cut padding waste. dialogue augments
// training with synthesized multi-turn sessions and produces a contextual
// parser (snapshot v4) whose decodes can condition on the previous turn's
// program. A non-nil ck makes
// the run resumable: checkpoints every ckSteps optimizer steps, and a
// restart that finds a compatible checkpoint picks the trajectory back up
// instead of retraining from scratch.
func trainParserLib(lib *thingpedia.Library, scale genie.Scale, strategy genie.Strategy, seed int64, maxSteps, lmSteps, batchSize int, bucket, dialogue bool, ck model.CheckpointStore, ckSteps int) (*model.Parser, *genie.Data) {
	d := genie.BuildData(lib, nltemplate.DefaultOptions, scale, seed)
	mcfg := scale.Model
	if maxSteps > 0 {
		mcfg.MaxSteps = maxSteps
	}
	if lmSteps >= 0 {
		mcfg.LMSteps = lmSteps
		if lmSteps == 0 {
			mcfg.PretrainLM = false
		}
	}
	if batchSize > 0 {
		mcfg.BatchSize = batchSize
	}
	mcfg.BucketByLength = bucket
	tp := d.Train(genie.TrainOptions{
		Strategy: strategy, Topt: genie.CanonicalTargets, Model: mcfg, Seed: seed,
		Dialogue:   dialogue,
		Checkpoint: ck, CheckpointEverySteps: ckSteps,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "genie: "+format+"\n", a...)
		},
	})
	// Stamp the library's grammar spec so every decode path is constrained to
	// well-formed programs; the spec also travels with the snapshot (v3). A
	// vocabulary too small to express any program keeps decoding unmasked.
	if err := tp.Parser.SetGrammar(grammar.NewSpec(lib.Functions())); err != nil {
		fmt.Fprintf(os.Stderr, "genie: grammar mask unavailable, decoding unconstrained: %v\n", err)
	}
	return tp.Parser, d
}

// calibrateParser fits the adaptive-decoding confidence threshold on the
// validation split and stamps it into the parser (and thus the snapshot).
func calibrateParser(parser *model.Parser, d *genie.Data, width int) {
	rep := eval.FitCalibration(parser, d.Validation, d.Lib, width)
	parser.SetCalibration(model.Calibration{Fitted: rep.Fitted, Threshold: rep.Threshold})
	fmt.Fprintf(os.Stderr, "genie: %s\n", rep)
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	strategyName := fs.String("strategy", "genie", "training strategy: genie, synthesized-only, paraphrase-only or baseline")
	out := fs.String("out", "parser.snap", "snapshot output path")
	maxSteps := fs.Int("maxsteps", 0, "cap on training steps (0 = scale preset)")
	lmSteps := fs.Int("lmsteps", -1, "LM pre-training steps (-1 = scale preset, 0 = skip)")
	batchSize := fs.Int("batchsize", 0, "training minibatch size (0 = scale preset, 1 = per-example)")
	bucket := fs.Bool("bucket", false, "length-bucket training minibatches (cuts padding waste; needs -batchsize > 1)")
	doEval := fs.Bool("eval", true, "score the trained parser on the validation set")
	calibrate := fs.Int("calibrate", 4, "beam width for confidence-threshold calibration on the validation set (<=1 = skip)")
	fs.Parse(args)
	scale := resolveScale(*scaleName)
	strategy, ok := strategyByName(*strategyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "genie: unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	start := time.Now()
	parser, d := trainParser(scale, strategy, *seed, *maxSteps, *lmSteps, *batchSize, *bucket)
	fmt.Fprintf(os.Stderr, "genie: trained %s/%s seed=%d in %s\n", scale.Name, strategy, *seed, time.Since(start).Round(time.Millisecond))
	if *doEval {
		// Score through the full batched serving path: EvaluateParallel's
		// concurrent requests keep every core busy while the Batcher decodes
		// each gathered window as one lockstep batched forward.
		bt := serve.NewBatcher(parser, serve.Options{MaxBatch: 16})
		rep := eval.EvaluateParallel(bt, d.Validation, d.Lib, 0)
		bt.Close()
		fmt.Fprintf(os.Stderr, "genie: validation program accuracy %.1f%% (function %.1f%%, %d examples)\n",
			rep.ProgramAccuracy(), rep.FunctionAccuracy(), rep.Total)
	}
	if *calibrate > 1 {
		calibrateParser(parser, d, *calibrate)
	}
	if err := parser.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "genie: saving snapshot: %v\n", err)
		os.Exit(1)
	}
	e, h := parser.Dims()
	sv, tv := parser.VocabSizes()
	fmt.Printf("saved %s (embed=%d hidden=%d src-vocab=%d tgt-vocab=%d)\n", *out, e, h, sv, tv)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	snapshot := fs.String("snapshot", "", "serve a trained snapshot (from genie train)")
	doTrain := fs.Bool("train", false, "train on startup instead of loading a snapshot")
	cacheDir := fs.String("cache", "", "snapshot-cache directory keyed by skill-library checksum (with -train)")
	scaleName := scaleFlag(fs)
	seed := fs.Int64("seed", 1, "random seed (with -train)")
	strategyName := fs.String("strategy", "genie", "training strategy (with -train)")
	maxSteps := fs.Int("maxsteps", 0, "cap on training steps (with -train; 0 = scale preset)")
	lmSteps := fs.Int("lmsteps", -1, "LM pre-training steps (with -train; -1 = scale preset, 0 = skip)")
	batchSize := fs.Int("batchsize", 0, "training minibatch size (with -train; 0 = scale preset)")
	bucket := fs.Bool("bucket", false, "length-bucket training minibatches (with -train)")
	addr := fs.String("addr", ":8080", "listen address")
	batch := fs.Int("batch", 8, "micro-batch size (gather up to this many requests)")
	wait := fs.Duration("wait", 2*time.Millisecond, "micro-batch gather window")
	workers := fs.Int("serve-workers", 0, "decode workers (0 = all CPUs)")
	beam := fs.Int("beam", 1, "beam width (1 = greedy)")
	adaptive := fs.Bool("adaptive", false, "confidence-routed decode: greedy first, escalate to -beam below the snapshot's calibrated threshold")
	fs.Parse(args)

	var parser *model.Parser
	switch {
	case *snapshot != "":
		var err error
		parser, err = model.LoadFile(*snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genie: loading snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "genie: loaded snapshot %s\n", *snapshot)
	case *doTrain:
		scale := resolveScale(*scaleName)
		strategy, ok := strategyByName(*strategyName)
		if !ok {
			fmt.Fprintf(os.Stderr, "genie: unknown strategy %q\n", *strategyName)
			os.Exit(2)
		}
		lib := thingpedia.Builtin()
		key := serve.Key(lib, scale.Name, strategy.String(),
			fmt.Sprintf("seed=%d", *seed), fmt.Sprintf("maxsteps=%d", *maxSteps),
			fmt.Sprintf("lmsteps=%d", *lmSteps), fmt.Sprintf("batchsize=%d", *batchSize),
			fmt.Sprintf("bucket=%t", *bucket),
			fmt.Sprintf("calibrate=%t:%d", *adaptive, *beam))
		cache := serve.NewCache(*cacheDir)
		start := time.Now()
		p, hit, err := cache.GetOrTrain(key, func() (*model.Parser, error) {
			p, d := trainParser(scale, strategy, *seed, *maxSteps, *lmSteps, *batchSize, *bucket)
			if *adaptive && *beam > 1 {
				calibrateParser(p, d, *beam)
			}
			return p, nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "genie: training: %v\n", err)
			os.Exit(1)
		}
		parser = p
		if hit {
			fmt.Fprintf(os.Stderr, "genie: snapshot cache hit for library checksum (key %s…), skipped training\n", key[:12])
		} else {
			fmt.Fprintf(os.Stderr, "genie: trained %s/%s seed=%d in %s (cache key %s…)\n",
				scale.Name, strategy, *seed, time.Since(start).Round(time.Millisecond), key[:12])
		}
	default:
		fmt.Fprintln(os.Stderr, "genie: serve needs -snapshot or -train")
		os.Exit(2)
	}

	if *adaptive {
		if thr, fitted := parser.ConfidenceThreshold(); fitted {
			fmt.Fprintf(os.Stderr, "genie: adaptive decode on (threshold %.4f, beam %d)\n", thr, *beam)
		} else {
			fmt.Fprintln(os.Stderr, "genie: adaptive decode requested but the parser has no fitted calibration; serving greedy")
		}
	}
	srv := serve.NewServer(parser, serve.Options{
		MaxBatch: *batch,
		MaxWait:  *wait,
		Workers:  *workers,
		Beam:     *beam,
		Adaptive: *adaptive,
	})
	defer srv.Close()
	e, h := parser.Dims()
	sv, tv := parser.VocabSizes()
	fmt.Fprintf(os.Stderr, "genie: serving on %s (embed=%d hidden=%d src-vocab=%d tgt-vocab=%d batch=%d wait=%s beam=%d adaptive=%t)\n",
		*addr, e, h, sv, tv, *batch, *wait, *beam, *adaptive)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
}
