// Command genie runs the Genie pipeline and the paper's experiments.
//
// Usage:
//
//	genie synthesize [-scale unit|small|full] [-n 10]
//	genie experiment fig7|fig8|table3|fig9|stats|errors|limitation|ifttt [-scale ...] [-seed N]
//	genie experiment all [-scale ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/genie"
	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "synthesize":
		cmdSynthesize(os.Args[2:])
	case "experiment":
		cmdExperiment(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: genie synthesize|experiment [args]")
	fmt.Fprintln(os.Stderr, "  genie synthesize -scale unit -n 10")
	fmt.Fprintln(os.Stderr, "  genie experiment fig7|fig8|table3|fig9|stats|errors|limitation|ifttt|all -scale unit -seed 1")
	os.Exit(2)
}

func scaleFlag(fs *flag.FlagSet) *string {
	return fs.String("scale", "unit", "scale preset: unit, small or full")
}

func resolveScale(name string) genie.Scale {
	s, ok := genie.ScaleByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "genie: unknown scale %q\n", name)
		os.Exit(2)
	}
	return s
}

func cmdSynthesize(args []string) {
	fs := flag.NewFlagSet("synthesize", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	n := fs.Int("n", 10, "examples to print")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	scale := resolveScale(*scaleName)

	lib := thingpedia.Builtin()
	d := genie.BuildData(lib, nltemplate.DefaultOptions, scale, *seed)
	fmt.Printf("synthesized %d sentences, %d paraphrases\n", len(d.Synth), len(d.Paraphrases))
	for i := 0; i < *n && i < len(d.Synth); i++ {
		fmt.Printf("  NL: %s\n  TT: %s\n", d.Synth[i].Sentence(), d.Synth[i].Program)
	}
}

func cmdExperiment(args []string) {
	if len(args) < 1 {
		usage()
	}
	which := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args[1:])
	scale := resolveScale(*scaleName)

	run := func(name string) {
		switch name {
		case "fig7":
			experiments.Fig7(scale, *seed).Print(os.Stdout)
		case "fig8":
			experiments.Fig8(scale, *seed).Print(os.Stdout)
		case "table3":
			experiments.Table3(scale, *seed).Print(os.Stdout)
		case "fig9":
			experiments.Fig9(scale, *seed).Print(os.Stdout)
		case "stats":
			experiments.Stats(scale, *seed).Print(os.Stdout)
		case "errors":
			experiments.Errors(scale, *seed).Print(os.Stdout)
		case "limitation":
			experiments.Limitation(scale, *seed).Print(os.Stdout)
		case "ifttt":
			experiments.IFTTTCleanup(scale, *seed).Print(os.Stdout)
		default:
			usage()
		}
		fmt.Println()
	}
	if which == "all" {
		for _, name := range []string{"stats", "fig7", "ifttt", "limitation", "fig8", "table3", "fig9", "errors"} {
			run(name)
		}
		return
	}
	run(which)
}
