// Command genie runs the Genie pipeline, the paper's experiments, and the
// parser-serving layer.
//
// Usage:
//
//	genie synthesize [-scale unit|small|full] [-n 10]
//	genie pipeline [-scale unit|small|full] [-n 20] [-workers N]
//	genie experiment fig7|fig8|table3|fig9|stats|errors|limitation|ifttt [-scale ...] [-seed N]
//	    [-workers N] [-cpuprofile cpu.out] [-memprofile mem.out]
//	genie experiment all [-scale ...]
//	genie train [-scale ...] [-seed N] [-strategy genie] [-maxsteps N] [-lmsteps N] [-batchsize B] [-bucket]
//	    [-calibrate 4] -out parser.snap
//	genie serve (-snapshot parser.snap | -train) [-cache DIR] [-addr :8080]
//	    [-batch 8] [-wait 2ms] [-serve-workers N] [-beam 1] [-adaptive]
//	genie fleet -libdir DIR [-watch 2s] [-maxqueue 64] [-cache DIR] [-addr :8080]
//	    [-scale unit] [-maxsteps N] [-batch 8] [-beam 1] [-adaptive] [-train-workers 1]
//	genie gateway (-backends URL,URL,... | -static-config cfg.json) [-addr :8090]
//	    [-replication 2] [-probe 500ms] [-fail-threshold 3] [-retries 2]
//	    [-hedge] [-hedge-after 0] [-fallback] [-seed 1]
//	genie chaos -target URL [-addr :8091] [-ctl :8092]
//
// synthesize materializes the synthesized set and prints samples; pipeline
// streams the concurrent synthesis→augmentation→parameter-replacement
// pipeline and prints training-ready examples as they are produced,
// cancelling the upstream stages once -n examples have been emitted. train
// runs the full data pipeline plus parser training, stamps the library's
// grammar spec (constrained decoding) and a fitted confidence threshold
// (-calibrate), and writes a versioned binary snapshot; serve loads a
// snapshot (or trains, optionally through the checksum-keyed snapshot cache)
// and answers POST /parse with micro-batched decoding — with -adaptive it
// decodes greedily and escalates to the beam only below the snapshot's
// calibrated confidence threshold. fleet is the multi-skill control plane: one parser per <skill>.tt
// library in -libdir, trained in the background (through the checksum-keyed
// cache when -cache is set), served behind per-skill micro-batching shards
// with bounded-queue admission control (429 + Retry-After when full),
// hot-swapped when the watcher sees a library's checksum change, routed by
// the request's "skill" field (or by best length-normalized score when
// absent), and observable on GET /skills and GET /metrics. gateway is the
// fault-tolerant routing tier in front of N fleet processes:
// consistent-hash routing by skill with R-way replication, least-loaded
// replica pick, health-checked membership with circuit-breaker readmission,
// deadline budgets, shed-aware retry and optional hedging. chaos is the
// fault-injection proxy the CI smoke uses to kill and restore a backend
// under load.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/genie"
	"repro/internal/nltemplate"
	"repro/internal/thingpedia"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "synthesize":
		cmdSynthesize(os.Args[2:])
	case "pipeline":
		cmdPipeline(os.Args[2:])
	case "experiment":
		cmdExperiment(os.Args[2:])
	case "train":
		cmdTrain(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "fleet":
		cmdFleet(os.Args[2:])
	case "gateway":
		cmdGateway(os.Args[2:])
	case "chaos":
		cmdChaos(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: genie synthesize|pipeline|experiment|train|serve|fleet|gateway|chaos [args]")
	fmt.Fprintln(os.Stderr, "  genie synthesize -scale unit -n 10")
	fmt.Fprintln(os.Stderr, "  genie pipeline -scale unit -n 20 -workers 0   (0 = all CPUs)")
	fmt.Fprintln(os.Stderr, "  genie experiment fig7|fig8|table3|fig9|stats|errors|limitation|ifttt|all -scale unit -seed 1 \\")
	fmt.Fprintln(os.Stderr, "       [-workers 0] [-cpuprofile cpu.out] [-memprofile mem.out]")
	fmt.Fprintln(os.Stderr, "  genie train -scale unit -seed 1 -out parser.snap [-strategy genie] [-maxsteps N] [-lmsteps N] [-batchsize B] [-calibrate 4]")
	fmt.Fprintln(os.Stderr, "  genie serve -snapshot parser.snap -addr :8080 [-batch 8] [-wait 2ms] [-serve-workers 0] [-beam 4] [-adaptive]")
	fmt.Fprintln(os.Stderr, "  genie serve -train -cache /var/cache/genie -scale unit   (train once per library checksum)")
	fmt.Fprintln(os.Stderr, "  genie fleet -libdir examples/fleet/skills -watch 2s -maxqueue 64   (one hot-swappable parser per skill)")
	fmt.Fprintln(os.Stderr, "  genie gateway -backends http://:8080,http://:8081 -replication 2 -retries 2   (fault-tolerant routing tier)")
	fmt.Fprintln(os.Stderr, "  genie chaos -target http://:8080 -addr :8091 -ctl :8092   (fault-injection proxy)")
	os.Exit(2)
}

func scaleFlag(fs *flag.FlagSet) *string {
	return fs.String("scale", "unit", "scale preset: unit, small or full")
}

func resolveScale(name string) genie.Scale {
	s, ok := genie.ScaleByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "genie: unknown scale %q\n", name)
		os.Exit(2)
	}
	return s
}

func cmdSynthesize(args []string) {
	fs := flag.NewFlagSet("synthesize", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	n := fs.Int("n", 10, "examples to print")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	scale := resolveScale(*scaleName)

	lib := thingpedia.Builtin()
	d := genie.BuildData(lib, nltemplate.DefaultOptions, scale, *seed)
	fmt.Printf("synthesized %d sentences, %d paraphrases\n", len(d.Synth), len(d.Paraphrases))
	for i := 0; i < *n && i < len(d.Synth); i++ {
		fmt.Printf("  NL: %s\n  TT: %s\n", d.Synth[i].Sentence(), d.Synth[i].Program)
	}
}

// cmdPipeline streams the concurrent data pipeline: synthesis waves,
// parameter instantiation and PPDB augmentation overlap through bounded
// channels, and cancelling the context (after -n examples) stops the
// upstream stages early instead of materializing the full set.
func cmdPipeline(args []string) {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	n := fs.Int("n", 20, "examples to emit (0 = the whole set)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "pipeline workers per stage (0 = all CPUs)")
	fs.Parse(args)
	scale := resolveScale(*scaleName)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lib := thingpedia.Builtin()
	stream := genie.PipelineStream(ctx, lib, nltemplate.DefaultOptions, scale, *seed, *workers)
	out := dataset.Collect(ctx, stream, *n)
	cancel() // stop upstream stages once enough examples arrived
	for i := range out {
		fmt.Printf("%s\t%s\n", out[i].Sentence(), out[i].Program)
	}
	fmt.Fprintf(os.Stderr, "pipeline emitted %d examples\n", len(out))
}

func cmdExperiment(args []string) {
	if len(args) < 1 {
		usage()
	}
	which := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	scaleName := scaleFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "concurrent training runs (0 = all CPUs); results are identical for any value")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args[1:])
	scale := resolveScale(*scaleName)
	scale.Workers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genie: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "genie: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "genie: %v\n", err)
				return
			}
			defer f.Close()
			goruntime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "genie: %v\n", err)
			}
		}()
	}

	run := func(name string) {
		switch name {
		case "fig7":
			experiments.Fig7(scale, *seed).Print(os.Stdout)
		case "fig8":
			experiments.Fig8(scale, *seed).Print(os.Stdout)
		case "table3":
			experiments.Table3(scale, *seed).Print(os.Stdout)
		case "fig9":
			experiments.Fig9(scale, *seed).Print(os.Stdout)
		case "stats":
			experiments.Stats(scale, *seed).Print(os.Stdout)
		case "errors":
			experiments.Errors(scale, *seed).Print(os.Stdout)
		case "limitation":
			experiments.Limitation(scale, *seed).Print(os.Stdout)
		case "ifttt":
			experiments.IFTTTCleanup(scale, *seed).Print(os.Stdout)
		default:
			usage()
		}
		fmt.Println()
	}
	if which == "all" {
		for _, name := range []string{"stats", "fig7", "ifttt", "limitation", "fig8", "table3", "fig9", "errors"} {
			run(name)
		}
		return
	}
	run(which)
}
