package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/faultinject"
)

// cmdChaos runs the fault-injection proxy in front of one backend: traffic
// on -addr is forwarded to -target through the active fault, and a control
// server on -ctl flips faults (POST /fault) and reports per-outcome counts
// (GET /stats). The CI chaos smoke uses it to kill and restore a fleet
// backend under gateway load without touching the real process.
func cmdChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	target := fs.String("target", "", "backend base URL to proxy")
	addr := fs.String("addr", ":8091", "proxy listen address")
	ctl := fs.String("ctl", ":8092", "control listen address (POST /fault, GET /stats)")
	fs.Parse(args)
	if *target == "" {
		fmt.Fprintln(os.Stderr, "genie: chaos needs -target")
		os.Exit(2)
	}
	p, err := faultinject.New(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 2)
	go func() { errc <- http.ListenAndServe(*ctl, p.ControlHandler()) }()
	fmt.Fprintf(os.Stderr, "genie: chaos proxy %s -> %s (control %s)\n", *addr, *target, *ctl)
	go func() { errc <- http.ListenAndServe(*addr, p) }()
	if err := <-errc; err != nil {
		fmt.Fprintf(os.Stderr, "genie: %v\n", err)
		os.Exit(1)
	}
}
