// Command genielint runs the repo's invariant-enforcing static-analysis
// passes (internal/analysis) over Go packages and reports violations of the
// contracts the code declares via //genielint: directives: arena/pool value
// lifetimes, pool Get/Put discipline, clone-before-mutate on pooled values,
// bit-determinism, ctx/deadline propagation, and guarded-by locking.
//
//	genielint ./...          # lint the whole module (CI gate)
//	genielint -json ./...    # machine-readable findings (CI artifact)
//	genielint ./internal/model ./internal/serve
//
// Exit status is 1 when any diagnostic survives the //genielint:allow
// suppressions, 2 on driver errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	listPasses := flag.Bool("passes", false, "list the pass catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genielint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listPasses {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages matched %v", patterns))
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "genielint: %s: %v\n", p.ImportPath, e)
		}
	}

	diags := analysis.Run(pkgs, analysis.Analyzers())

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := struct {
			Packages int       `json:"packages"`
			Findings []finding `json:"findings"`
		}{Packages: len(pkgs), Findings: []finding{}}
		for _, d := range diags {
			out.Findings = append(out.Findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Fprintf(os.Stderr, "genielint: %d packages clean\n", len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genielint:", err)
	os.Exit(2)
}
