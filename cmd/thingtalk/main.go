// Command thingtalk is a language tool for ThingTalk programs: it parses,
// typechecks, canonicalizes, describes and executes programs against the
// built-in simulated skill library.
//
// Usage:
//
//	thingtalk check 'now => @com.thecatapi.get => notify'
//	thingtalk canon 'now => @x.y param:b = 1 param:a = 2 => notify'
//	thingtalk describe 'monitor ( @com.twitter.timeline ) => notify'
//	thingtalk run -ticks 5 'monitor ( @org.thingpedia.weather.current ) => notify'
//	thingtalk library
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/runtime"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	lib := thingpedia.Builtin()
	switch os.Args[1] {
	case "check":
		prog := parse(lib, argText(os.Args[2:]))
		fmt.Println("ok:", prog)
	case "canon":
		prog := parse(lib, argText(os.Args[2:]))
		fmt.Println(thingtalk.Canonicalize(prog, lib))
	case "describe":
		prog := parse(lib, argText(os.Args[2:]))
		fmt.Println(thingtalk.Describe(prog, lib))
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		ticks := fs.Int("ticks", 1, "simulated timeline length")
		fs.Parse(os.Args[2:])
		prog := parse(lib, argText(fs.Args()))
		exec := runtime.NewExecutor(lib)
		runtime.RegisterAll(exec, lib, 42)
		notifs, err := exec.Run(thingtalk.Canonicalize(prog, lib), *ticks)
		if err != nil {
			fatal(err)
		}
		for _, n := range notifs {
			fmt.Printf("[t=%d] %s\n", n.Tick, n.Message)
		}
		for _, a := range exec.Actions {
			fmt.Printf("[t=%d] executed %s\n", a.Tick, a.Selector)
		}
	case "library":
		st := lib.Stats()
		fmt.Printf("%d skills, %d functions (%d queries, %d actions), %d parameters, %d templates\n",
			st.Skills, st.Functions, st.Queries, st.Actions, st.DistinctParams, st.Primitives)
		for _, c := range lib.Classes() {
			fmt.Printf("  @%s (%d functions)\n", c.Name, len(c.Functions))
		}
	default:
		usage()
	}
}

func argText(args []string) string {
	if len(args) == 0 {
		usage()
	}
	return strings.Join(args, " ")
}

func parse(lib *thingpedia.Library, src string) *thingtalk.Program {
	prog, err := thingtalk.ParseProgram(src)
	if err != nil {
		fatal(err)
	}
	if err := thingtalk.Typecheck(prog, lib); err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thingtalk:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: thingtalk check|canon|describe|run|library [program]")
	os.Exit(2)
}
