// Package repro's root benchmarks exercise the paper's tables and figures at
// unit scale (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured values). Each experiment benchmark runs one
// iteration of the corresponding experiment — same pipeline shape and same
// printed rows/series as the paper, but with the unit-scale presets, so the
// numbers are qualitative reproductions rather than full-scale regenerations
// (use `cmd/genie experiment <name> -scale small|full` for the larger runs).
// The substrate micro-benchmarks below them measure the hot paths of the
// pipeline, including the concurrent synthesis→augmentation pipeline at
// several worker counts (BenchmarkSynthesizePipeline).
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/genie"
	"repro/internal/model"
	"repro/internal/nltemplate"
	"repro/internal/runtime"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

var benchScale = genie.Unit

// --- Paper tables and figures ---------------------------------------------------

// BenchmarkFig7TrainingSetCharacteristics regenerates Fig. 7 (training-set
// composition: primitive / +filters / compound / +param-passing / +filters).
func BenchmarkFig7TrainingSetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkFig8TrainingStrategies regenerates Fig. 8 (synthesized-only vs
// paraphrase-only vs Genie on the four evaluation sets).
func BenchmarkFig8TrainingStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkTable3Ablations regenerates Table 3 (the feature ablation study).
func BenchmarkTable3Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkFig9CaseStudies regenerates Fig. 9 (Spotify, TACL and TT+A;
// Baseline vs Genie).
func BenchmarkFig9CaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkSynthesisStatistics regenerates the §5.2 dataset statistics
// (synthesized-set size, vocabulary growth, paraphrase novelty).
func BenchmarkSynthesisStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Stats(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkErrorAnalysis regenerates the §5.5 error ladder.
func BenchmarkErrorAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Errors(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkParaphraseLimitation regenerates §5.2's "limitation of paraphrase
// tests" experiment (the Wang-et-al methodology scored three ways).
func BenchmarkParaphraseLimitation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Limitation(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkIFTTTCleanup regenerates Table 2 (IFTTT cleanup-rule activity).
func BenchmarkIFTTTCleanup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.IFTTTCleanup(benchScale, 1)
		if i == 0 {
			b.StopTimer()
			res.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// --- Substrate micro-benchmarks --------------------------------------------------

func BenchmarkSynthesis(b *testing.B) {
	lib := thingpedia.Builtin()
	g := nltemplate.StandardGrammar(lib, nltemplate.DefaultOptions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synthesis.Synthesize(g, synthesis.Config{TargetPerRule: 24, MaxDepth: 4, Seed: int64(i), Schemas: lib})
	}
}

func BenchmarkParseProgram(b *testing.B) {
	src := `monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`
	for i := 0; i < b.N; i++ {
		if _, err := thingtalk.ParseProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTypecheckAndCanonicalize(b *testing.B) {
	lib := thingpedia.Builtin()
	prog, err := thingtalk.ParseProgram(
		`now => @com.dropbox.list_folder filter param:file_size > 10 unit:MB and ( param:is_folder == false or param:modified_time > date:start_of_week ) => notify`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := thingtalk.Typecheck(prog, lib); err != nil {
			b.Fatal(err)
		}
		thingtalk.Canonicalize(prog, lib)
	}
}

// benchTrainCfg is the shared config of the two training benchmarks below.
var benchTrainCfg = model.Config{EmbedDim: 32, HiddenDim: 48, LR: 1e-3, Epochs: 1,
	EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 16, MinVocabCount: 1, Seed: 1}

func benchTrainPair() model.Pair {
	return model.Pair{
		Src: []string{"post", "hello", "world", "on", "twitter"},
		Tgt: []string{"now", "=>", "@com.twitter.post", "param:status", "=", `"`, "hello", "world", `"`},
	}
}

// BenchmarkTrainingStep measures the steady-state pointer-generator training
// step: vocabularies, parser, graph and arena are built once, then each
// iteration is one forward/backward/Adam update. With the typed tape and
// tensor arena this is (near) allocation-free; the pre-arena substrate
// allocated two slices plus a closure for every op of every token.
func BenchmarkTrainingStep(b *testing.B) {
	pair := benchTrainPair()
	tr := model.NewTrainer([]model.Pair{pair}, nil, benchTrainCfg)
	tr.Step(&pair) // warm the arena, tape and scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(&pair)
	}
}

// BenchmarkTrainModel measures a whole model.Train call on one pair (vocab
// build, parser init, one epoch) — the shape of the pre-PR
// BenchmarkTrainingStep, kept for apples-to-apples comparison with the
// numbers recorded in EXPERIMENTS.md.
func BenchmarkTrainModel(b *testing.B) {
	pairs := []model.Pair{benchTrainPair()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Train(pairs, nil, nil, benchTrainCfg)
	}
}

// benchBatchPairs builds a mixed-length training set for the minibatch
// benchmarks: assistant-command sentences in the repo's benchmark convention
// (BenchmarkTrainingStep's shape), with 4–7 source tokens and 8–11 program
// tokens varied so batches exercise the padding and masking machinery.
func benchBatchPairs() []model.Pair {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	verbs := []string{"post", "send", "note", "mail"}
	filler := []string{"on", "my", "feed"}
	var pairs []model.Pair
	for i, v := range values {
		for j, vb := range verbs {
			src := append([]string{vb, v, "now"}, filler[:(i+j)%4]...)
			tgt := []string{"now", "=>", "@svc." + vb, "param:text", "=", `"`, v, `"`}
			if (i+j)%3 > 0 {
				tgt = append(tgt, "param:when", "=", "enum:now")
			}
			pairs = append(pairs, model.Pair{Src: src, Tgt: tgt})
		}
	}
	return pairs
}

// BenchmarkTrainStepBatched measures per-example training throughput of the
// padded-minibatch path at B=1 vs B=16: each iteration is one full
// forward/backward/Adam step over a minibatch, and the ns/example metric
// divides by the batch width. The B=16 leg amortizes weight-matrix streaming
// and per-op tape overhead over 16 rows (and, on a multi-core runner, splits
// each kernel across cores); the ratio of the two legs' ns/example is the
// minibatching speedup.
func BenchmarkTrainStepBatched(b *testing.B) {
	pairs := benchBatchPairs()
	// B=1 is the pre-existing per-example Step path (the "before"); B=16
	// pushes minibatches through StepBatch.
	b.Run("B=1", func(b *testing.B) {
		tr := model.NewTrainer(pairs, nil, benchTrainCfg)
		tr.Step(&pairs[0]) // warm the arena, tape and scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Step(&pairs[i%len(pairs)])
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/example")
	})
	const bs = 16
	b.Run("B=16", func(b *testing.B) {
		tr := model.NewTrainer(pairs, nil, benchTrainCfg)
		var batches [][]model.Pair
		for lo := 0; lo+bs <= len(pairs); lo += bs {
			batches = append(batches, pairs[lo:lo+bs])
		}
		tr.StepBatch(batches[0]) // warm the arena, tape and scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.StepBatch(batches[i%len(batches)])
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bs), "ns/example")
	})
}

// BenchmarkBatchedDecode measures the serving-side win of lockstep batched
// decoding: a 16-sentence window decoded sequentially (16 Parse/ParseBeam
// calls) vs as one ParseBatch/ParseBeamBatch call, greedy and at beam 4.
// Outputs are token-identical (TestParseBatchParallelMatchesSequential);
// only the per-sentence cost changes.
func BenchmarkBatchedDecode(b *testing.B) {
	pairs := benchBatchPairs()
	cfg := benchTrainCfg
	cfg.Epochs = 3
	p := model.Train(pairs, nil, nil, cfg)
	window := make([][]string, 16)
	for i := range window {
		window[i] = pairs[i%len(pairs)].Src
	}
	p.ParseBatch(window) // warm graph pools and scratch buffers
	p.ParseBeamBatch(window, 4)

	perSentence := func(b *testing.B) func() {
		b.ReportAllocs()
		b.ResetTimer()
		return func() {
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(window)), "ns/sentence")
		}
	}
	b.Run("greedy/sequential", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			for _, s := range window {
				p.Parse(s)
			}
		}
	})
	b.Run("greedy/batched", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			p.ParseBatch(window)
		}
	})
	b.Run("beam4/sequential", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			for _, s := range window {
				p.ParseBeam(s, 4)
			}
		}
	})
	b.Run("beam4/batched", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			p.ParseBeamBatch(window, 4)
		}
	})
}

// benchContextPairs extends benchBatchPairs with multi-turn follow-ups:
// every base command gains one "change it to <value>" turn whose context is
// the base program and whose target swaps only the quoted value, the shape
// package dialogue synthesizes.
func benchContextPairs() []model.Pair {
	base := benchBatchPairs()
	pairs := append([]model.Pair(nil), base...)
	for i := range base {
		prev := base[i].Tgt
		next := base[(i+1)%len(base)].Tgt
		tgt := append([]string(nil), prev...)
		tgt[6] = next[6] // the quoted value token
		pairs = append(pairs, model.Pair{
			Src: []string{"change", "it", "to", tgt[6]},
			Tgt: tgt,
			Ctx: prev,
		})
	}
	return pairs
}

// BenchmarkContextDecode measures what conditioning on the previous turn's
// program costs at serving time: one contextual parser decodes the same
// follow-up window through the plain path (nil context — bit-identical to a
// single-turn parser) and through the contextual path (context encoder +
// second attention head + pointer copy over context slots), sequentially and
// as one lockstep batched forward.
func BenchmarkContextDecode(b *testing.B) {
	pairs := benchContextPairs()
	cfg := benchTrainCfg
	cfg.Epochs = 3
	cfg.Contextual = true
	p := model.Train(pairs, nil, nil, cfg)
	window := make([][]string, 16)
	ctxs := make([][]string, 16)
	follow := pairs[len(pairs)/2:]
	for i := range window {
		window[i] = follow[i%len(follow)].Src
		ctxs[i] = follow[i%len(follow)].Ctx
	}
	p.ParseBatch(window) // warm graph pools and scratch buffers
	p.ParseBatchContext(window, ctxs)

	perSentence := func(b *testing.B) func() {
		b.ReportAllocs()
		b.ResetTimer()
		return func() {
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(window)), "ns/sentence")
		}
	}
	b.Run("no-context/sequential", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			for _, s := range window {
				p.ParseContext(s, nil)
			}
		}
	})
	b.Run("context/sequential", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			for j, s := range window {
				p.ParseContext(s, ctxs[j])
			}
		}
	})
	b.Run("no-context/batched", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			p.ParseBatch(window)
		}
	})
	b.Run("context/batched", func(b *testing.B) {
		defer perSentence(b)()
		for i := 0; i < b.N; i++ {
			p.ParseBatchContext(window, ctxs)
		}
	})
}

func BenchmarkRuntimeExecution(b *testing.B) {
	lib := thingpedia.Builtin()
	exec := runtime.NewExecutor(lib)
	runtime.RegisterAll(exec, lib, 1)
	prog, err := thingtalk.ParseProgram(
		`now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(prog, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizePipeline measures the concurrent streaming data
// pipeline end to end (synthesis waves → parameter instantiation → PPDB
// augmentation over bounded channels) at two scales and at Workers=1 vs
// Workers=NumCPU. The emitted example set is identical across worker counts;
// only the wall-clock time changes, so the ratio of the two sub-benchmarks
// is the pipeline's parallel speedup on this machine.
func BenchmarkSynthesizePipeline(b *testing.B) {
	lib := thingpedia.Builtin()
	scales := []struct {
		name  string
		scale genie.Scale
	}{
		{"small", genie.Unit},
		{"medium", genie.Small},
	}
	workersList := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		workersList = append(workersList, n)
	} else {
		fmt.Println("single-CPU runner: skipping the workers=NumCPU leg (no speedup measurable)")
	}
	for _, sc := range scales {
		for _, workers := range workersList {
			b.Run(fmt.Sprintf("%s/workers=%d", sc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ctx := context.Background()
					stream := genie.PipelineStream(ctx, lib, nltemplate.DefaultOptions, sc.scale, 1, workers)
					out := dataset.Collect(ctx, stream, 0)
					if len(out) == 0 {
						b.Fatal("pipeline emitted nothing")
					}
					if i == 0 {
						b.ReportMetric(float64(len(out)), "examples")
					}
				}
			})
		}
	}
}

// BenchmarkFig8Workers measures the parallel experiment harness end to end:
// the Fig8 strategy comparison (6 independent training runs at a reduced
// scale) at Workers=1 vs Workers=NumCPU. The result rows are bit-identical
// across worker counts — TestFig8ParallelDeterminism asserts it — so the
// ratio of the two legs is the training harness's parallel speedup on this
// machine.
func BenchmarkFig8Workers(b *testing.B) {
	scale := genie.Unit
	scale.SynthTarget = 12
	scale.MaxDepth = 3
	scale.ParaphraseMax = 80
	scale.TrainCap = 150
	scale.EvalN = 20
	scale.Seeds = []int64{1, 2}
	scale.Model = model.Config{
		EmbedDim: 16, HiddenDim: 24, LR: 5e-3, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, PretrainLM: false,
		MaxDecodeLen: 24, MinVocabCount: 3,
	}
	workersList := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		workersList = append(workersList, n)
	} else {
		fmt.Println("single-CPU runner: skipping the workers=NumCPU leg (no speedup measurable)")
	}
	for _, workers := range workersList {
		scale.Workers = workers
		sc := scale
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.Fig8(sc, 1)
				if len(res.Cells) == 0 {
					b.Fatal("empty Fig8 result")
				}
			}
		})
	}
}

// BenchmarkParseThroughput measures trained-parser decoding at Workers=1 vs
// Workers=NumCPU over one shared parser. Decoding draws all per-call state
// from pooled arena-backed contexts, so the parallel leg must scale with
// cores (>1.5x on a multi-core runner) and the steady state must be
// near-zero allocs/op — the returned token slice is the only allocation.
// The ratio of the two legs is the inference-side parallel speedup.
func BenchmarkParseThroughput(b *testing.B) {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	verbs := []string{"post", "send", "note"}
	var pairs []model.Pair
	for _, v := range values {
		for _, vb := range verbs {
			pairs = append(pairs, model.Pair{
				Src: []string{vb, v, "now"},
				Tgt: []string{"now", "=>", "@svc." + vb, "param:text", "=", `"`, v, `"`},
			})
		}
	}
	cfg := benchTrainCfg
	cfg.Epochs = 3
	p := model.Train(pairs, nil, nil, cfg)
	sentences := make([][]string, len(pairs))
	for i := range pairs {
		sentences[i] = pairs[i].Src
	}
	for _, s := range sentences {
		p.Parse(s) // warm the graph pool and scratch buffers
	}

	workersList := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		workersList = append(workersList, n)
	} else {
		fmt.Println("single-CPU runner: skipping the workers=NumCPU leg (no speedup measurable)")
	}
	for _, workers := range workersList {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						if out := p.Parse(sentences[i%len(sentences)]); len(out) == 0 {
							b.Error("empty decode")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

func BenchmarkParameterExpansion(b *testing.B) {
	lib := thingpedia.Builtin()
	d := genie.BuildData(lib, nltemplate.DefaultOptions, genie.Unit, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TrainingExamples(genie.StrategyGenie, rng)
	}
}
